"""Recurrent cells.

RouteNet uses GRU cells for both of its message-passing updates: the *path
update* runs a GRU along the sequence of links of each path, and the *link
update* applies a single GRU step with the aggregated path messages as input.
"""

from __future__ import annotations

import numpy as np

from . import init, ops
from .layers import Module, Parameter
from .tensor import Tensor, tensor

__all__ = ["GRUCell", "RNNCell", "make_cell"]


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-safe logistic with a single ``exp`` evaluation.

    Matches :func:`repro.nn.ops.sigmoid` bit-for-bit on the non-saturated
    range (``exp`` is only ever fed non-positive arguments).
    """
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


class GRUCell(Module):
    """Gated Recurrent Unit cell (Cho et al., 2014).

    Update equations for input ``x`` and previous state ``h``::

        z = sigmoid(x @ Wz + h @ Uz + bz)      # update gate
        r = sigmoid(x @ Wr + h @ Ur + br)      # reset gate
        n = tanh(x @ Wn + (r * h) @ Un + bn)   # candidate state
        h' = (1 - z) * n + z * h

    The candidate/gate kernels are stored concatenated ``[z | r | n]`` for
    fewer matmuls per step.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(
            np.concatenate(
                [init.glorot_uniform(rng, input_size, hidden_size) for _ in range(3)], axis=1
            ),
            name="w",
        )
        self.u = Parameter(
            np.concatenate(
                [init.orthogonal(rng, hidden_size, hidden_size) for _ in range(3)], axis=1
            ),
            name="u",
        )
        self.bias = Parameter(init.zeros(3 * hidden_size), name="bias")

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU step for a batch: ``x`` is (B, I), ``h`` is (B, H).

        Runs as two fused tape nodes (input transform + recurrent step)
        with hand-written backwards: composing the step from ~20 primitive
        ops materializes an intermediate array (plus its gradient buffer)
        per op, which dominates training time on fused batches.  The fused
        form computes the same arithmetic — gate pre-activations are
        bit-identical, and the update/reset sigmoids share one ``exp`` — in
        a fraction of the memory passes.  Callers that reuse one input
        transform across timesteps (RouteNet's path update) invoke the two
        halves directly.
        """
        return self.step_precomputed(self.precompute_input(x), h)

    def precompute_input(self, x: Tensor) -> Tensor:
        """The input-side gate pre-activations ``x @ W + b`` as one node.

        RouteNet's path update consumes *gathered link states*: transforming
        all L link states once per round and gathering rows of the result is
        bit-identical to transforming the gathered rows at every timestep
        (each output row is an independent dot product) but does the GEMM
        over L rows instead of ``sum(P_t)``.
        """
        x = tensor(x)
        w, bias = self.w, self.bias
        out_data = x.data @ w.data + bias.data

        def backward(grad: np.ndarray) -> None:
            if w.requires_grad:
                w._accumulate(x.data.T @ grad)
            if bias.requires_grad:
                bias._accumulate(grad.sum(axis=0))
            if x.requires_grad:
                x._accumulate(grad @ w.data.T)

        return Tensor._make(
            out_data, (x, w, bias), backward, retains=(x.data, w.data)
        )

    def step_precomputed(self, gates_x: Tensor, h: Tensor) -> Tensor:
        """One GRU step given precomputed input gates (see ``__call__``)."""
        gates_x, h = tensor(gates_x), tensor(h)
        hs = self.hidden_size
        u = self.u
        gx, hd = gates_x.data, h.data
        zr = _stable_sigmoid(gx[:, : 2 * hs] + hd @ u.data[:, : 2 * hs])
        z = zr[:, :hs]
        r = zr[:, hs:]
        rh = r * hd
        n = np.tanh(gx[:, 2 * hs :] + rh @ u.data[:, 2 * hs :])
        out_data = (1.0 - z) * n + z * hd

        def backward(grad: np.ndarray) -> None:
            uzr = u.data[:, : 2 * hs]
            un = u.data[:, 2 * hs :]
            # h' = (1 - z) * n + z * h
            dnpre = grad * (1.0 - z)
            dnpre *= 1.0 - n * n                         # d(tanh pre-act)
            dz = grad * (hd - n)
            drh = dnpre @ un.T
            dr = drh * hd
            # Joint sigmoid derivative for both gates: s * (1 - s) * upstream.
            dzrpre = zr * (1.0 - zr)
            dzrpre[:, :hs] *= dz
            dzrpre[:, hs:] *= dr
            if gates_x.requires_grad:
                gates_x._accumulate(np.concatenate([dzrpre, dnpre], axis=1))
            if u.requires_grad:
                u._accumulate(
                    np.concatenate([hd.T @ dzrpre, rh.T @ dnpre], axis=1)
                )
            if h.requires_grad:
                dh = grad * z
                np.multiply(drh, r, out=drh)             # drh is dead after dr
                dh += drh
                dh += dzrpre @ uzr.T
                h._accumulate(dh)

        return Tensor._make(
            out_data, (gates_x, h, u), backward, retains=(hd, u.data, zr, n, rh)
        )


class RNNCell(Module):
    """Vanilla Elman cell ``h' = tanh(x @ W + h @ U + b)``.

    The ungated alternative used by the cell-type ablation: without gates,
    long paths and many message-passing rounds degrade state retention.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(init.glorot_uniform(rng, input_size, hidden_size), name="w")
        self.u = Parameter(init.orthogonal(rng, hidden_size, hidden_size), name="u")
        self.bias = Parameter(init.zeros(hidden_size), name="bias")

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        """One step for a batch: ``x`` is (B, I), ``h`` is (B, H)."""
        return self.step_precomputed(self.precompute_input(x), h)

    def precompute_input(self, x: Tensor) -> Tensor:
        """Input-side pre-activation ``x @ W + b`` (see :class:`GRUCell`)."""
        return x @ self.w + self.bias

    def step_precomputed(self, gates_x: Tensor, h: Tensor) -> Tensor:
        """One step given the precomputed input pre-activation."""
        return ops.tanh(gates_x + h @ self.u)


_CELLS = {"gru": GRUCell, "rnn": RNNCell}


def make_cell(
    kind: str, input_size: int, hidden_size: int, rng: np.random.Generator
) -> "GRUCell | RNNCell":
    """Cell factory by name (``"gru"`` or ``"rnn"``)."""
    try:
        cls = _CELLS[kind]
    except KeyError:
        raise ValueError(f"unknown cell type {kind!r}; options: {sorted(_CELLS)}") from None
    return cls(input_size, hidden_size, rng)
