"""Recurrent cells.

RouteNet uses GRU cells for both of its message-passing updates: the *path
update* runs a GRU along the sequence of links of each path, and the *link
update* applies a single GRU step with the aggregated path messages as input.
"""

from __future__ import annotations

import numpy as np

from . import init, ops
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = ["GRUCell", "RNNCell", "make_cell"]


class GRUCell(Module):
    """Gated Recurrent Unit cell (Cho et al., 2014).

    Update equations for input ``x`` and previous state ``h``::

        z = sigmoid(x @ Wz + h @ Uz + bz)      # update gate
        r = sigmoid(x @ Wr + h @ Ur + br)      # reset gate
        n = tanh(x @ Wn + (r * h) @ Un + bn)   # candidate state
        h' = (1 - z) * n + z * h

    The candidate/gate kernels are stored concatenated ``[z | r | n]`` for
    fewer matmuls per step.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(
            np.concatenate(
                [init.glorot_uniform(rng, input_size, hidden_size) for _ in range(3)], axis=1
            ),
            name="w",
        )
        self.u = Parameter(
            np.concatenate(
                [init.orthogonal(rng, hidden_size, hidden_size) for _ in range(3)], axis=1
            ),
            name="u",
        )
        self.bias = Parameter(init.zeros(3 * hidden_size), name="bias")

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU step for a batch: ``x`` is (B, I), ``h`` is (B, H)."""
        hs = self.hidden_size
        gates_x = x @ self.w + self.bias
        gates_h = h @ self.u
        z = ops.sigmoid(gates_x[:, :hs] + gates_h[:, :hs])
        r = ops.sigmoid(gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs])
        n = ops.tanh(gates_x[:, 2 * hs :] + (r * h) @ self.u[:, 2 * hs :])
        return (1.0 - z) * n + z * h


class RNNCell(Module):
    """Vanilla Elman cell ``h' = tanh(x @ W + h @ U + b)``.

    The ungated alternative used by the cell-type ablation: without gates,
    long paths and many message-passing rounds degrade state retention.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(init.glorot_uniform(rng, input_size, hidden_size), name="w")
        self.u = Parameter(init.orthogonal(rng, hidden_size, hidden_size), name="u")
        self.bias = Parameter(init.zeros(hidden_size), name="bias")

    def __call__(self, x: Tensor, h: Tensor) -> Tensor:
        """One step for a batch: ``x`` is (B, I), ``h`` is (B, H)."""
        return ops.tanh(x @ self.w + h @ self.u + self.bias)


_CELLS = {"gru": GRUCell, "rnn": RNNCell}


def make_cell(
    kind: str, input_size: int, hidden_size: int, rng: np.random.Generator
) -> "GRUCell | RNNCell":
    """Cell factory by name (``"gru"`` or ``"rnn"``)."""
    try:
        cls = _CELLS[kind]
    except KeyError:
        raise ValueError(f"unknown cell type {kind!r}; options: {sorted(_CELLS)}") from None
    return cls(input_size, hidden_size, rng)
