"""Checkpointing helpers: save/load Module parameters as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]

_META_KEY = "__meta__"


def save_state(path: str | Path, state: dict[str, np.ndarray], meta: dict | None = None) -> None:
    """Write a parameter dict (plus optional JSON metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read back a ``(state, meta)`` pair written by :func:`save_state`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    return state, meta


def save_module(path: str | Path, module: Module, meta: dict | None = None) -> None:
    """Checkpoint ``module`` (parameters + metadata) to an ``.npz`` file."""
    save_state(path, module.state_dict(), meta)


def load_module(path: str | Path, module: Module) -> dict:
    """Restore parameters in-place into ``module``; returns the metadata."""
    state, meta = load_state(path)
    module.load_state_dict(state)
    return meta
