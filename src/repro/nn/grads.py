"""Parameter/gradient export and import across process boundaries.

Data-parallel training ships two kinds of arrays between the coordinating
process and its gradient workers every step:

* **parameter broadcast** — the coordinator's current weights, copied out
  once per step (:func:`export_params`) and copied *into* each worker
  replica in place (:func:`load_params`);
* **gradient reduction** — each worker's shard gradients, copied out of
  the worker's pooled buffers (:func:`export_grads`) and accumulated into
  the coordinator's gradients in a caller-controlled, fixed order
  (:func:`accumulate_grads`).

Every function here respects the gradient-buffer pool discipline of
:mod:`repro.nn.tensor`: exports are dense *copies* (a pooled buffer is
recycled on ``zero_grad``, so an exported gradient must own its memory to
survive the next step — and to be pickled), and imports write **into**
existing buffers rather than rebinding ``p.grad``/``p.data`` to foreign
arrays the pool could never reclaim.  Accumulation scales through a pooled
scratch buffer, so steady-state reduction performs no array allocation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .layers import Parameter
from .tensor import _GRAD_POOL

__all__ = ["export_params", "load_params", "export_grads", "accumulate_grads"]


def _check_lengths(params: Sequence[Parameter], arrays: Sequence[np.ndarray]) -> None:
    if len(params) != len(arrays):
        raise ValueError(
            f"parameter/array count mismatch: {len(params)} parameters vs "
            f"{len(arrays)} arrays"
        )


def export_params(params: Sequence[Parameter]) -> list[np.ndarray]:
    """Dense copies of every parameter value, in parameter order.

    The copies are safe to pickle and to mutate; they never alias the live
    weights (which the optimizer updates in place).
    """
    return [np.array(p.data, copy=True) for p in params]


def load_params(params: Sequence[Parameter], arrays: Sequence[np.ndarray]) -> None:
    """Copy broadcast values into each parameter **in place**.

    In-place ``copyto`` keeps every downstream alias valid — optimizer
    moment/scratch buffers were allocated against these exact arrays — and
    is bitwise-exact for matching dtypes.
    """
    _check_lengths(params, arrays)
    for p, a in zip(params, arrays):
        if p.data.shape != np.shape(a):
            raise ValueError(
                f"parameter shape mismatch: expected {p.data.shape}, "
                f"got {np.shape(a)}"
            )
        np.copyto(p.data, a)


def export_grads(params: Sequence[Parameter]) -> list[np.ndarray]:
    """Dense copies of every parameter gradient, in parameter order.

    Raises:
        ValueError: If any parameter has no accumulated gradient — exporting
            after a partial backward would silently drop a term from the
            reduction.
    """
    out: list[np.ndarray] = []
    for p in params:
        if p.grad is None:
            raise ValueError(
                f"parameter {p.name or p.shape} has no gradient to export; "
                "run backward() first"
            )
        out.append(np.array(p.grad, copy=True))
    return out


def accumulate_grads(
    params: Sequence[Parameter],
    grads: Sequence[np.ndarray],
    scale: float = 1.0,
) -> None:
    """Add ``scale * grads[i]`` into each parameter's gradient, in place.

    A parameter without an existing gradient buffer acquires one from the
    pool (exactly like tape accumulation); one with a buffer accumulates
    into it.  Because IEEE addition is deterministic, calling this in a
    fixed order over shard gradients yields bitwise-identical totals no
    matter which process computed each shard.
    """
    _check_lengths(params, grads)
    for p, g in zip(params, grads):
        if p.data.shape != np.shape(g):
            raise ValueError(
                f"gradient shape mismatch: expected {p.data.shape}, "
                f"got {np.shape(g)}"
            )
        scratch = _GRAD_POOL.acquire(p.data.shape, p.data.dtype)
        np.multiply(g, scale, out=scratch, casting="unsafe")
        p._accumulate(scratch)
        _GRAD_POOL.release(scratch)
