"""Traffic matrices.

A :class:`TrafficMatrix` stores the average offered traffic (bits/s) between
every ordered node pair.  Together with a topology and a routing scheme it
fully determines the offered load of each link, which is what both the
simulator and the analytical models consume.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import TrafficError
from ..units import BitsPerSecond
from ..routing import RoutingScheme
from ..topology import Topology

__all__ = ["TrafficMatrix", "link_loads", "max_link_utilization"]


class TrafficMatrix:
    """Average per-pair traffic demand in bits/s."""

    def __init__(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
            raise TrafficError(f"traffic matrix must be square, got shape {rates.shape}")
        if (rates < 0).any():
            raise TrafficError("traffic rates must be non-negative")
        if np.diag(rates).any():
            raise TrafficError("self-traffic (diagonal entries) must be zero")
        self.rates = rates.copy()
        self.rates.flags.writeable = False

    @property
    def num_nodes(self) -> int:
        return self.rates.shape[0]

    def rate(self, src: int, dst: int) -> BitsPerSecond:
        """Offered traffic for one ordered pair (bits/s)."""
        return float(self.rates[src, dst])

    def total(self) -> BitsPerSecond:
        """Total offered traffic across all pairs (bits/s)."""
        return float(self.rates.sum())

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every rate multiplied by ``factor``."""
        if factor < 0:
            raise TrafficError(f"scale factor must be non-negative, got {factor}")
        return TrafficMatrix(self.rates * factor)

    def nonzero_pairs(self) -> list[tuple[int, int]]:
        """Ordered pairs with positive demand, sorted."""
        src, dst = np.nonzero(self.rates)
        return sorted(zip(src.tolist(), dst.tolist()))

    def to_dict(self) -> dict[str, float]:
        """JSON-friendly sparse representation."""
        return {f"{s}-{d}": float(self.rates[s, d]) for s, d in self.nonzero_pairs()}

    @classmethod
    def from_dict(cls, num_nodes: int, data: Mapping[str, float]) -> "TrafficMatrix":
        """Inverse of :meth:`to_dict`."""
        rates = np.zeros((num_nodes, num_nodes))
        for key, value in data.items():
            s, d = key.split("-")
            rates[int(s), int(d)] = value
        return cls(rates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self.rates.shape == other.rates.shape and np.allclose(
            self.rates, other.rates
        )

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(nodes={self.num_nodes}, "
            f"total={self.total():.1f} bit/s)"
        )


def link_loads(
    topology: Topology, routing: RoutingScheme, tm: TrafficMatrix
) -> np.ndarray:
    """Offered load per link (bits/s) implied by routing the matrix.

    This is the fluid-level quantity: the sum of all pair demands whose path
    crosses each link.  It ignores queueing and loss, so values may exceed
    capacity (utilization > 1 marks an overloaded link).
    """
    if tm.num_nodes != topology.num_nodes:
        raise TrafficError(
            f"traffic matrix is {tm.num_nodes}-node but topology has "
            f"{topology.num_nodes} nodes"
        )
    loads = np.zeros(topology.num_links)
    for (src, dst), _ in routing.items():
        rate = tm.rate(src, dst)
        if rate <= 0:
            continue
        for link_id in routing.link_path(src, dst):
            loads[link_id] += rate
    return loads


def max_link_utilization(
    topology: Topology, routing: RoutingScheme, tm: TrafficMatrix
) -> float:
    """Highest offered-load/capacity ratio across links."""
    loads = link_loads(topology, routing, tm)
    return float((loads / topology.capacities()).max())
