"""Packet arrival processes and packet-size distributions for the simulator.

The public RouteNet datasets were simulated with Poisson arrivals and
exponentially distributed packet sizes; both are provided here, plus on-off
(bursty) and deterministic (CBR) sources for robustness experiments.
"""

from __future__ import annotations

from typing import Iterator, Protocol

import numpy as np

from ..units import Bits, BitsPerPacket, Packets, PacketsPerSecond, Seconds

from ..errors import TrafficError
from ..random import make_rng

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DeterministicArrivals",
    "PacketSizer",
    "ExponentialPacketSize",
    "ConstantPacketSize",
    "make_arrivals",
]

DEFAULT_MEAN_PACKET_BITS: BitsPerPacket = 1_000.0


class ArrivalProcess(Protocol):
    """Yields successive packet inter-arrival times (seconds)."""

    mean_rate: PacketsPerSecond

    def interarrivals(self) -> Iterator[Seconds]: ...


class PacketSizer(Protocol):
    """Draws packet sizes (bits)."""

    mean_bits: BitsPerPacket

    def sample(self) -> Bits: ...


class PoissonArrivals:
    """Poisson process: i.i.d. exponential inter-arrival times."""

    def __init__(self, rate_pps: PacketsPerSecond, seed: int | np.random.Generator | None = None):
        if rate_pps <= 0:
            raise TrafficError(f"arrival rate must be positive, got {rate_pps}")
        self.mean_rate = rate_pps
        self._rng = make_rng(seed)

    def interarrivals(self) -> Iterator[Seconds]:
        scale = 1.0 / self.mean_rate
        while True:
            yield float(self._rng.exponential(scale))


class DeterministicArrivals:
    """Constant-bit-rate source: fixed inter-arrival spacing."""

    def __init__(self, rate_pps: PacketsPerSecond, seed: object = None):
        if rate_pps <= 0:
            raise TrafficError(f"arrival rate must be positive, got {rate_pps}")
        self.mean_rate = rate_pps

    def interarrivals(self) -> Iterator[Seconds]:
        gap = 1.0 / self.mean_rate
        while True:
            yield gap


class OnOffArrivals:
    """Markov-modulated on-off source (bursty traffic).

    During ON periods packets arrive as a Poisson stream at ``peak_rate``;
    OFF periods are silent.  ON/OFF durations are exponential with the given
    means.  The long-run mean rate is ``peak_rate * on / (on + off)``.
    """

    def __init__(
        self,
        mean_rate_pps: PacketsPerSecond,
        seed: int | np.random.Generator | None = None,
        burstiness: float = 4.0,
        mean_on: float = 0.5,
        mean_off: float = 1.5,
    ) -> None:
        if mean_rate_pps <= 0:
            raise TrafficError(f"arrival rate must be positive, got {mean_rate_pps}")
        if burstiness <= 1.0:
            raise TrafficError(f"burstiness must exceed 1, got {burstiness}")
        duty = mean_on / (mean_on + mean_off)
        self.mean_rate = mean_rate_pps
        self.peak_rate = mean_rate_pps / duty
        if burstiness != self.peak_rate / mean_rate_pps:
            # Honour the requested peak-to-mean ratio by adjusting OFF time.
            self.peak_rate = mean_rate_pps * burstiness
            duty = 1.0 / burstiness
            mean_off = mean_on * (1.0 - duty) / duty
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._rng = make_rng(seed)

    def interarrivals(self) -> Iterator[Seconds]:
        rng = self._rng
        while True:
            remaining_on = rng.exponential(self._mean_on)
            pending_off = 0.0
            while True:
                gap = rng.exponential(1.0 / self.peak_rate)
                if gap > remaining_on:
                    # Burst ended inside this gap; carry silence over.
                    pending_off += rng.exponential(self._mean_off)
                    yield float(remaining_on + pending_off + gap - remaining_on)
                    break
                remaining_on -= gap
                yield float(gap)


class ExponentialPacketSize:
    """Exponential packet sizes with a floor of one bit."""

    def __init__(
        self,
        mean_bits: BitsPerPacket = DEFAULT_MEAN_PACKET_BITS,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if mean_bits <= 0:
            raise TrafficError(f"mean packet size must be positive, got {mean_bits}")
        self.mean_bits = mean_bits
        self._rng = make_rng(seed)

    def sample(self) -> Bits:
        return max(1.0, float(self._rng.exponential(self.mean_bits)))


class ConstantPacketSize:
    """Fixed-size packets."""

    def __init__(self, mean_bits: BitsPerPacket = DEFAULT_MEAN_PACKET_BITS, seed: object = None):
        if mean_bits <= 0:
            raise TrafficError(f"mean packet size must be positive, got {mean_bits}")
        self.mean_bits = mean_bits

    def sample(self) -> Bits:
        # One packet of exactly the mean size: bits/packet x packets = bits.
        one_packet: Packets = 1.0
        return self.mean_bits * one_packet


_ARRIVALS = {
    "poisson": PoissonArrivals,
    "deterministic": DeterministicArrivals,
    "onoff": OnOffArrivals,
}


def make_arrivals(
    kind: str, rate_pps: float, seed: int | np.random.Generator | None = None
) -> ArrivalProcess:
    """Factory for arrival processes by name ('poisson', 'onoff', ...)."""
    try:
        cls = _ARRIVALS[kind]
    except KeyError:
        raise TrafficError(
            f"unknown arrival process {kind!r}; options: {sorted(_ARRIVALS)}"
        ) from None
    return cls(rate_pps, seed=seed)
