"""Traffic substrate: matrices, generators, packet arrival processes."""

from .matrix import TrafficMatrix, link_loads, max_link_utilization
from .generators import (
    uniform_traffic,
    gravity_traffic,
    hotspot_traffic,
    scale_to_utilization,
    random_traffic,
)
from .trace import TrafficTrace, diurnal_trace
from .processes import (
    ArrivalProcess,
    PoissonArrivals,
    OnOffArrivals,
    DeterministicArrivals,
    PacketSizer,
    ExponentialPacketSize,
    ConstantPacketSize,
    make_arrivals,
    DEFAULT_MEAN_PACKET_BITS,
)

__all__ = [
    "TrafficMatrix",
    "link_loads",
    "max_link_utilization",
    "uniform_traffic",
    "gravity_traffic",
    "hotspot_traffic",
    "scale_to_utilization",
    "random_traffic",
    "TrafficTrace",
    "diurnal_trace",
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DeterministicArrivals",
    "PacketSizer",
    "ExponentialPacketSize",
    "ConstantPacketSize",
    "make_arrivals",
    "DEFAULT_MEAN_PACKET_BITS",
]
