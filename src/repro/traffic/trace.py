"""Traffic traces: time series of traffic matrices.

Real operations watch KPIs evolve over a day; production traces are not
available offline, so :func:`diurnal_trace` synthesizes the canonical
shape — a sinusoidal day/night cycle with multiplicative noise on top of a
fixed spatial pattern — which exercises the same temporal-sweep code path
(one model inference per snapshot) as a replayed production trace would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrafficError
from ..random import make_rng
from ..routing import RoutingScheme
from ..topology import Topology
from .generators import scale_to_utilization, uniform_traffic
from .matrix import TrafficMatrix

__all__ = ["TrafficTrace", "diurnal_trace"]


@dataclass(frozen=True)
class TrafficTrace:
    """A time-indexed sequence of traffic matrices.

    Attributes:
        times: Timestamps in hours, strictly increasing.
        matrices: One matrix per timestamp.
    """

    times: tuple[float, ...]
    matrices: tuple[TrafficMatrix, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.matrices):
            raise TrafficError(
                f"{len(self.times)} timestamps for {len(self.matrices)} matrices"
            )
        if not self.times:
            raise TrafficError("a trace needs at least one snapshot")
        diffs = np.diff(self.times)
        if (diffs <= 0).any():
            raise TrafficError("timestamps must be strictly increasing")

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.matrices))

    def snapshot(self, index: int) -> tuple[float, TrafficMatrix]:
        return self.times[index], self.matrices[index]

    def peak_index(self) -> int:
        """Index of the snapshot with the highest total offered traffic."""
        totals = [m.total() for m in self.matrices]
        return int(np.argmax(totals))


def diurnal_trace(
    topology: Topology,
    routing: RoutingScheme,
    num_snapshots: int = 24,
    seed: int | np.random.Generator | None = None,
    low_utilization: float = 0.2,
    high_utilization: float = 0.85,
    peak_hour: float = 20.0,
    noise: float = 0.05,
) -> TrafficTrace:
    """Synthesize a 24-hour diurnal traffic cycle.

    The spatial pattern (which pairs talk) is drawn once; only the overall
    intensity follows the day curve, mirroring how aggregate backbone load
    behaves.  Bottleneck utilization moves sinusoidally between
    ``low_utilization`` (early morning trough) and ``high_utilization``
    (evening peak at ``peak_hour``), with multiplicative noise per snapshot.

    Raises:
        TrafficError: On invalid utilization bounds or snapshot count.
    """
    if num_snapshots < 1:
        raise TrafficError(f"need at least one snapshot, got {num_snapshots}")
    if not 0 < low_utilization <= high_utilization:
        raise TrafficError(
            f"bad utilization bounds [{low_utilization}, {high_utilization}]"
        )
    rng = make_rng(seed)
    base = uniform_traffic(topology.num_nodes, mean_rate=1.0, seed=rng)
    base = scale_to_utilization(base, topology, routing, 1.0)

    times = tuple(24.0 * i / num_snapshots for i in range(num_snapshots))
    mid = (high_utilization + low_utilization) / 2.0
    amplitude = (high_utilization - low_utilization) / 2.0
    matrices = []
    for hour in times:
        phase = 2.0 * np.pi * (hour - peak_hour) / 24.0
        target = mid + amplitude * np.cos(phase)
        target *= float(rng.normal(1.0, noise))
        target = float(np.clip(target, 0.05 * low_utilization, 1.5 * high_utilization))
        matrices.append(base.scaled(target))
    return TrafficTrace(times=times, matrices=tuple(matrices))
