"""Traffic-matrix generators.

The paper's datasets vary traffic matrices over "different traffic
intensity"; these generators reproduce the three classic shapes (uniform
random, gravity, hotspot) and a utilization-targeted scaler so a sample's
load level can be controlled precisely.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrafficError
from ..random import make_rng
from ..routing import RoutingScheme
from ..topology import Topology
from .matrix import TrafficMatrix, max_link_utilization

__all__ = [
    "uniform_traffic",
    "gravity_traffic",
    "hotspot_traffic",
    "scale_to_utilization",
    "random_traffic",
]


def uniform_traffic(
    num_nodes: int,
    mean_rate: float,
    seed: int | np.random.Generator | None = None,
    spread: float = 0.9,
) -> TrafficMatrix:
    """Independent per-pair rates ``U(mean*(1-spread), mean*(1+spread))``.

    Args:
        num_nodes: Matrix dimension.
        mean_rate: Average per-pair demand (bits/s).
        seed: RNG seed.
        spread: Relative half-width of the uniform interval, in [0, 1].
    """
    if not 0.0 <= spread <= 1.0:
        raise TrafficError(f"spread must be in [0, 1], got {spread}")
    if mean_rate < 0:
        raise TrafficError(f"mean_rate must be non-negative, got {mean_rate}")
    rng = make_rng(seed)
    low, high = mean_rate * (1.0 - spread), mean_rate * (1.0 + spread)
    rates = rng.uniform(low, high, size=(num_nodes, num_nodes))
    np.fill_diagonal(rates, 0.0)
    return TrafficMatrix(rates)


def gravity_traffic(
    num_nodes: int,
    total_rate: float,
    seed: int | np.random.Generator | None = None,
) -> TrafficMatrix:
    """Gravity-model matrix: demand(s,d) proportional to mass(s)*mass(d).

    Node masses are exponential draws, giving realistic heavy-tailed
    pair demands that sum to ``total_rate``.
    """
    if total_rate < 0:
        raise TrafficError(f"total_rate must be non-negative, got {total_rate}")
    rng = make_rng(seed)
    mass = rng.exponential(1.0, size=num_nodes)
    rates = np.outer(mass, mass)
    np.fill_diagonal(rates, 0.0)
    if rates.sum() > 0:
        rates *= total_rate / rates.sum()
    return TrafficMatrix(rates)


def hotspot_traffic(
    num_nodes: int,
    mean_rate: float,
    seed: int | np.random.Generator | None = None,
    num_hotspots: int = 2,
    hotspot_factor: float = 5.0,
) -> TrafficMatrix:
    """Uniform background plus a few nodes attracting amplified demand."""
    if num_hotspots < 1 or num_hotspots > num_nodes:
        raise TrafficError(
            f"num_hotspots must be in [1, {num_nodes}], got {num_hotspots}"
        )
    rng = make_rng(seed)
    base = uniform_traffic(num_nodes, mean_rate, seed=rng).rates.copy()
    hotspots = rng.choice(num_nodes, size=num_hotspots, replace=False)
    base[:, hotspots] *= hotspot_factor
    np.fill_diagonal(base, 0.0)
    return TrafficMatrix(base)


def scale_to_utilization(
    tm: TrafficMatrix,
    topology: Topology,
    routing: RoutingScheme,
    target_max_utilization: float,
) -> TrafficMatrix:
    """Rescale a matrix so its most loaded link sits at the target utilization.

    This is how samples of controlled "traffic intensity" are produced: draw
    a random shape, then pin the bottleneck load to e.g. 0.4 (light) or 0.9
    (near saturation).
    """
    if target_max_utilization <= 0:
        raise TrafficError(
            f"target utilization must be positive, got {target_max_utilization}"
        )
    current = max_link_utilization(topology, routing, tm)
    if current == 0:
        raise TrafficError("cannot scale an all-zero traffic matrix")
    return tm.scaled(target_max_utilization / current)


def random_traffic(
    topology: Topology,
    routing: RoutingScheme,
    seed: int | np.random.Generator | None = None,
    intensity_range: tuple[float, float] = (0.3, 0.9),
    shapes: tuple[str, ...] = ("uniform", "gravity", "hotspot"),
) -> TrafficMatrix:
    """Draw a random matrix shape, then scale it to a random intensity.

    This single entry point reproduces the dataset variety of the paper:
    every call yields a different (shape, intensity) combination targeted at
    a bottleneck utilization drawn from ``intensity_range``.
    """
    rng = make_rng(seed)
    shape = shapes[int(rng.integers(0, len(shapes)))]
    n = topology.num_nodes
    if shape == "uniform":
        tm = uniform_traffic(n, mean_rate=1.0, seed=rng)
    elif shape == "gravity":
        tm = gravity_traffic(n, total_rate=float(n * n), seed=rng)
    elif shape == "hotspot":
        tm = hotspot_traffic(n, mean_rate=1.0, seed=rng)
    else:
        raise TrafficError(f"unknown traffic shape {shape!r}")
    target = float(rng.uniform(*intensity_range))
    return scale_to_utilization(tm, topology, routing, target)
