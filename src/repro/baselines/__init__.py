"""Comparison baselines: fixed-topology MLP and the analytic queueing model.

The queueing baseline lives in :mod:`repro.queueing` (it is also a substrate
used elsewhere); it is re-exported here so benchmark code can import every
comparator from one place.
"""

from ..queueing import QueueingNetworkModel
from .mlp_baseline import FixedTopologyMLP

__all__ = ["FixedTopologyMLP", "QueueingNetworkModel"]
