"""Fixed-topology fully-connected baseline.

The paper's introduction argues that conventional NN architectures
(fully-connected, CNN) "are not well suited to model information structured
as graphs" — they need a fixed-dimension input and therefore cannot
generalize across topologies.  This baseline makes that argument concrete:
an MLP mapping the flattened traffic matrix to per-pair delays.  It can be
competitive *on the topology and routing distribution it was trained on*,
and is structurally unable to produce predictions for a different topology
(:meth:`FixedTopologyMLP.predict` raises), reproducing the motivation for
RouteNet.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..dataset import Sample
from ..errors import ModelError
from ..random import make_rng
from ..topology import Topology
from ..training.loss import huber_loss

__all__ = ["FixedTopologyMLP"]


class FixedTopologyMLP:
    """MLP from a flattened traffic matrix to all-pairs delay estimates."""

    def __init__(
        self,
        topology: Topology,
        hidden: tuple[int, ...] = (128, 64),
        learning_rate: float = 1e-3,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.topology = topology
        self.pairs: tuple[tuple[int, int], ...] = tuple(topology.node_pairs())
        self._pair_index = {p: i for i, p in enumerate(self.pairs)}
        rng = make_rng(seed)
        dim = len(self.pairs)
        self.net = nn.MLP(dim, list(hidden), dim, rng, activation="relu")
        self._optimizer = nn.Adam(list(self.net.parameters()), lr=learning_rate)
        # Scaling statistics, fit on the training set.
        self._traffic_scale: float | None = None
        self._log_mean: float | None = None
        self._log_std: float | None = None

    # ------------------------------------------------------------------
    def _check_sample(self, sample: Sample) -> None:
        if (
            sample.topology.num_nodes != self.topology.num_nodes
            or sample.topology.name != self.topology.name
        ):
            raise ModelError(
                "FixedTopologyMLP is bound to "
                f"{self.topology.name!r} ({self.topology.num_nodes} nodes) and "
                f"cannot process {sample.topology.name!r} "
                f"({sample.topology.num_nodes} nodes): fully-connected models "
                "have a fixed input dimension — this inability to transfer is "
                "the limitation RouteNet removes"
            )

    def _features(self, sample: Sample) -> np.ndarray:
        if self._traffic_scale is None:
            raise ModelError("baseline is untrained; call fit() first")
        x = np.array(
            [sample.traffic.rate(s, d) for s, d in self.pairs]
        ) / self._traffic_scale
        return x[None, :]

    # ------------------------------------------------------------------
    def fit(self, samples: list[Sample], epochs: int = 30,
            seed: int | np.random.Generator | None = None) -> list[float]:
        """Train on same-topology samples; returns per-epoch mean losses."""
        if not samples:
            raise ModelError("cannot train on an empty sample list")
        for sample in samples:
            self._check_sample(sample)

        rates = np.concatenate(
            [[s.traffic.rate(a, b) for a, b in self.pairs] for s in samples]
        )
        self._traffic_scale = float(rates.mean()) or 1.0
        logs = np.concatenate([np.log(s.delay) for s in samples])
        self._log_mean = float(logs.mean())
        self._log_std = float(logs.std()) or 1.0

        rng = make_rng(seed)
        order = np.arange(len(samples))
        losses = []
        for _ in range(epochs):
            rng.shuffle(order)
            epoch_losses = []
            for i in order:
                sample = samples[i]
                idx = np.array([self._pair_index[p] for p in sample.pairs])
                target = (np.log(sample.delay) - self._log_mean) / self._log_std
                self._optimizer.zero_grad()
                out = self.net(nn.tensor(self._features(sample)))
                pred = nn.ops.gather(out.reshape(-1, 1), idx)
                loss = huber_loss(pred, target[:, None])
                loss.backward()
                self._optimizer.step()
                epoch_losses.append(loss.item())
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def predict(self, sample: Sample) -> np.ndarray:
        """Delay predictions (seconds) for ``sample.pairs``.

        Raises:
            ModelError: For samples from any other topology — by design.
        """
        self._check_sample(sample)
        idx = np.array([self._pair_index[p] for p in sample.pairs])
        with nn.no_grad():
            out = self.net(nn.tensor(self._features(sample))).numpy()[0]
        return np.exp(out[idx] * self._log_std + self._log_mean)
