"""Library-wide exception hierarchy."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "TrafficError",
    "SimulationError",
    "DatasetError",
    "ModelError",
    "ServingError",
    "RunnerError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Invalid or inconsistent network topology."""


class RoutingError(ReproError):
    """Invalid routing scheme (missing path, loop, disconnected pair)."""


class TrafficError(ReproError):
    """Invalid traffic matrix or arrival-process parameters."""


class SimulationError(ReproError):
    """Packet-level simulation failed or was misconfigured."""


class DatasetError(ReproError):
    """Dataset generation, serialization or splitting failed."""


class ModelError(ReproError):
    """Model construction or checkpoint mismatch."""


class ServingError(ReproError):
    """Batched inference engine misuse (unpackable inputs, empty batch)."""


class RunnerError(ReproError):
    """Parallel execution runner failure (exhausted retries, bad checkpoint)."""


class AnalysisError(ReproError):
    """Static-analysis failure (lint crash, shape mismatch, bad gradient)."""
