"""Library-wide exception hierarchy."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "TrafficError",
    "SimulationError",
    "DatasetError",
    "DatasetFormatError",
    "ModelError",
    "ServingError",
    "AdmissionError",
    "DeadlineExceededError",
    "RunnerError",
    "AnalysisError",
    "ReproDeprecationWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Invalid or inconsistent network topology."""


class RoutingError(ReproError):
    """Invalid routing scheme (missing path, loop, disconnected pair)."""


class TrafficError(ReproError):
    """Invalid traffic matrix or arrival-process parameters."""


class SimulationError(ReproError):
    """Packet-level simulation failed or was misconfigured."""


class DatasetError(ReproError):
    """Dataset generation, serialization or splitting failed."""


class DatasetFormatError(DatasetError):
    """Corrupt, unversioned, or future-format dataset record.

    Always carries the *location* of the offending record so a bad line in a
    multi-gigabyte archive can be found without bisecting the file.

    Attributes:
        path: Archive or shard file containing the bad record (may be None
            when the record came from an in-memory dict).
        line: 1-based line number for JSONL archives, or record index for
            binary shards; None when unknown.
    """

    def __init__(self, message: str, *, path: object = None, line: int | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.line = line


class ModelError(ReproError):
    """Model construction or checkpoint mismatch."""


class ServingError(ReproError):
    """Batched inference engine misuse (unpackable inputs, empty batch)."""


class AdmissionError(ServingError):
    """Request rejected at service admission (never silently blocks).

    Attributes:
        reason: Machine-readable rejection cause — ``"queue_full"`` or
            ``"shutdown"`` — also used as the per-reason stats counter key.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ServingError):
    """Request expired in the queue before its batch started serving."""


class RunnerError(ReproError):
    """Parallel execution runner failure (exhausted retries, bad checkpoint)."""


class AnalysisError(ReproError):
    """Static-analysis failure (lint crash, shape mismatch, bad gradient)."""


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation warning raised by this library's compatibility shims.

    A distinct subclass so the repo's own test suite can promote *repro*
    deprecations to errors (``filterwarnings`` in ``pyproject.toml``) without
    also erroring on third-party ``DeprecationWarning`` noise.  External
    callers filtering plain ``DeprecationWarning`` still catch it.
    """
