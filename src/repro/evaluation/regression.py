"""Figure 2 data: predicted-vs-true regression on a sample scenario.

The paper's Fig. 2 is a scatter of RouteNet's delay predictions against the
simulator's ground truth for one Geant2 scenario, hugging the ``y = x``
diagonal.  :func:`collect_regression` computes exactly those pairs plus the
summary statistics (slope through the origin, R², Pearson) that quantify how
tightly the cloud tracks the diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..training.metrics import regression_summary

__all__ = ["RegressionData", "collect_regression", "binned_means"]


@dataclass(frozen=True)
class RegressionData:
    """Scatter data plus fit statistics for one scenario."""

    true: np.ndarray
    pred: np.ndarray
    pairs: tuple[tuple[int, int], ...]

    def summary(self) -> dict[str, float]:
        """MRE / R² / Pearson etc. of the scatter."""
        return regression_summary(self.pred, self.true)

    def slope_through_origin(self) -> float:
        """Least-squares slope of ``pred ~ slope * true`` (1.0 is perfect)."""
        denom = float((self.true**2).sum())
        if denom == 0.0:  # repro-lint: disable=RP002 -- exact-zero guard
            raise ValueError("ground truth is identically zero")
        return float((self.pred * self.true).sum() / denom)

    def points(self) -> list[tuple[float, float]]:
        """(true, pred) tuples, e.g. for CSV export."""
        return list(zip(self.true.tolist(), self.pred.tolist()))


def collect_regression(
    pred_delay: np.ndarray,
    true_delay: np.ndarray,
    pairs: tuple[tuple[int, int], ...],
) -> RegressionData:
    """Package per-pair predictions into :class:`RegressionData`.

    Raises:
        ValueError: On shape mismatch or empty input.
    """
    pred_delay = np.asarray(pred_delay, dtype=float)
    true_delay = np.asarray(true_delay, dtype=float)
    if pred_delay.shape != true_delay.shape or len(pairs) != pred_delay.shape[0]:
        raise ValueError(
            f"inconsistent regression data: pred {pred_delay.shape}, "
            f"true {true_delay.shape}, {len(pairs)} pairs"
        )
    if pred_delay.size == 0:
        raise ValueError("empty regression data")
    return RegressionData(true=true_delay, pred=pred_delay, pairs=tuple(pairs))


def binned_means(
    data: RegressionData, num_bins: int = 10
) -> list[tuple[float, float, int]]:
    """Mean prediction per ground-truth bin: ``(bin_center, mean_pred, n)``.

    A compact, plot-free way to read the regression trend (printed by the
    fig2 bench as the figure's "series").
    """
    if num_bins < 1:
        raise ValueError(f"need at least one bin, got {num_bins}")
    edges = np.linspace(data.true.min(), data.true.max(), num_bins + 1)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        in_bin = (data.true >= lo) & (data.true <= hi if hi == edges[-1] else data.true < hi)
        if in_bin.any():
            rows.append(
                (float((lo + hi) / 2), float(data.pred[in_bin].mean()), int(in_bin.sum()))
            )
    return rows
