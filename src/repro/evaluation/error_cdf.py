"""Figure 3 data: Cumulative Distribution Function of the relative error.

The paper's Fig. 3 overlays the CDF of the relative error between RouteNet's
predictions and the simulated delays for the three evaluation datasets
(NSFNET-14, synthetic-50, and the unseen Geant2-24).  This module computes
those curves as data: quantiles, fraction-within-|e| thresholds, and evenly
sampled (error, F(error)) series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..training.metrics import relative_errors

__all__ = ["ErrorCDF", "compute_error_cdf", "cdf_table"]


@dataclass(frozen=True)
class ErrorCDF:
    """Empirical CDF of signed relative errors for one dataset."""

    label: str
    errors: np.ndarray  # sorted signed relative errors

    def __post_init__(self) -> None:
        if self.errors.size == 0:
            raise ValueError("cannot build a CDF from zero errors")

    @property
    def count(self) -> int:
        return int(self.errors.size)

    def quantile(self, q: float) -> float:
        """Signed-error quantile, q in [0, 1]."""
        return float(np.quantile(self.errors, q))

    def abs_quantile(self, q: float) -> float:
        """|error| quantile — e.g. ``abs_quantile(0.9)`` = P90 error."""
        return float(np.quantile(np.abs(self.errors), q))

    def fraction_within(self, threshold: float) -> float:
        """Share of predictions with |relative error| <= threshold."""
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        return float((np.abs(self.errors) <= threshold).mean())

    def series(self, num_points: int = 21) -> list[tuple[float, float]]:
        """Evenly spaced ``(error, F(error))`` samples of the CDF curve."""
        if num_points < 2:
            raise ValueError(f"need >= 2 points, got {num_points}")
        xs = np.linspace(self.errors[0], self.errors[-1], num_points)
        fs = np.searchsorted(self.errors, xs, side="right") / self.errors.size
        return [(float(x), float(f)) for x, f in zip(xs, fs)]


def compute_error_cdf(
    pred: np.ndarray, true: np.ndarray, label: str = "dataset"
) -> ErrorCDF:
    """Build the CDF of signed relative errors for pooled predictions."""
    errors = np.sort(relative_errors(pred, true))
    return ErrorCDF(label=label, errors=errors)


def cdf_table(
    cdfs: list[ErrorCDF],
    quantiles: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95),
) -> str:
    """Render CDFs side by side as the textual equivalent of Fig. 3.

    One row per quantile of |relative error|, one column per dataset, plus
    the share of predictions within 10% / 20% / 50% error bands.
    """
    if not cdfs:
        raise ValueError("no CDFs to tabulate")
    width = max(12, max(len(c.label) for c in cdfs) + 2)
    header = "quantile".ljust(10) + "".join(c.label.rjust(width) for c in cdfs)
    lines = [header, "-" * len(header)]
    for q in quantiles:
        row = f"P{int(q * 100):<9d}" + "".join(
            f"{c.abs_quantile(q):>{width}.4f}" for c in cdfs
        )
        lines.append(row)
    for threshold in (0.1, 0.2, 0.5):
        row = f"<=|{threshold:.1f}|".ljust(10) + "".join(
            f"{c.fraction_within(threshold):>{width}.3f}" for c in cdfs
        )
        lines.append(row)
    lines.append(
        "count".ljust(10) + "".join(f"{c.count:>{width}d}" for c in cdfs)
    )
    return "\n".join(lines)
