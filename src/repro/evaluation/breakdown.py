"""Error breakdowns: where does the model err?

Slices pooled prediction errors by structural properties of the paths —
currently hop count (longer paths compose more per-link estimates, so error
growth with length measures how well the model's message passing composes).
"""

from __future__ import annotations

import numpy as np

from ..dataset import Sample
from ..training.metrics import regression_summary

__all__ = ["error_by_path_length", "format_breakdown"]


def error_by_path_length(
    samples: list[Sample],
    predictions: list[np.ndarray],
) -> dict[int, dict[str, float]]:
    """Regression metrics grouped by routed-path hop count.

    Args:
        samples: Evaluated samples.
        predictions: Per-sample predicted delay arrays, aligned with each
            sample's ``pairs``.

    Returns:
        ``{hops: regression_summary}`` for every hop count present.
    """
    if len(samples) != len(predictions):
        raise ValueError(
            f"{len(samples)} samples but {len(predictions)} prediction arrays"
        )
    by_hops: dict[int, tuple[list[float], list[float]]] = {}
    for sample, pred in zip(samples, predictions):
        pred = np.asarray(pred, dtype=float)
        if pred.shape != sample.delay.shape:
            raise ValueError("prediction array does not match sample pairs")
        for (s, d), p, t in zip(sample.pairs, pred, sample.delay):
            hops = len(sample.routing.link_path(s, d))
            bucket = by_hops.setdefault(hops, ([], []))
            bucket[0].append(p)
            bucket[1].append(t)
    return {
        hops: regression_summary(np.array(preds), np.array(trues))
        for hops, (preds, trues) in sorted(by_hops.items())
    }


def format_breakdown(breakdown: dict[int, dict[str, float]]) -> str:
    """Render the per-hop table."""
    if not breakdown:
        raise ValueError("empty breakdown")
    header = f"{'hops':>5s} {'paths':>7s} {'MRE':>8s} {'MedRE':>8s} {'R2':>8s}"
    lines = [header, "-" * len(header)]
    for hops, stats in breakdown.items():
        lines.append(
            f"{hops:>5d} {int(stats['count']):>7d} {stats['mre']:>8.3f} "
            f"{stats['medre']:>8.3f} {stats['r2']:>8.3f}"
        )
    return "\n".join(lines)
