"""CSV export of figure data.

The offline environment has no matplotlib, so figure *data* is the product:
these helpers write the exact series behind each paper figure to CSV files
that any plotting tool can consume.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from .error_cdf import ErrorCDF
from .regression import RegressionData
from .reports import RankedPath

__all__ = [
    "export_regression_csv",
    "export_cdf_csv",
    "export_top_paths_csv",
    "export_matrix_csv",
]


def _open_writer(path: str | Path):
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path.open("w", newline="", encoding="utf-8")


def export_regression_csv(data: RegressionData, path: str | Path) -> int:
    """Write (src, dst, true_delay, predicted_delay) rows; returns row count."""
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["src", "dst", "true_delay", "predicted_delay"])
        for (src, dst), true, pred in zip(data.pairs, data.true, data.pred):
            writer.writerow([src, dst, f"{true:.9g}", f"{pred:.9g}"])
    return len(data.pairs)


def export_cdf_csv(
    cdfs: Sequence[ErrorCDF], path: str | Path, num_points: int = 101
) -> int:
    """Write long-format CDF series: (dataset, error, cumulative_fraction)."""
    if not cdfs:
        raise ValueError("no CDFs to export")
    rows = 0
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["dataset", "relative_error", "cumulative_fraction"])
        for cdf in cdfs:
            for error, fraction in cdf.series(num_points):
                writer.writerow([cdf.label, f"{error:.9g}", f"{fraction:.9g}"])
                rows += 1
    return rows


def export_top_paths_csv(rows: Sequence[RankedPath], path: str | Path) -> int:
    """Write the Fig. 4 table: (rank, src, dst, predicted, simulated)."""
    if not rows:
        raise ValueError("no ranked paths to export")
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["rank", "src", "dst", "predicted_delay", "true_delay"])
        for row in rows:
            writer.writerow(
                [
                    row.rank,
                    row.src,
                    row.dst,
                    f"{row.predicted_delay:.9g}",
                    "" if row.true_delay is None else f"{row.true_delay:.9g}",
                ]
            )
    return len(rows)


def export_matrix_csv(
    matrix: dict[str, dict[str, float]], path: str | Path
) -> int:
    """Write a metrics matrix (e.g. the generalization table) long-format."""
    if not matrix:
        raise ValueError("empty metrics matrix")
    with _open_writer(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["dataset", "metric", "value"])
        count = 0
        for label, stats in matrix.items():
            for metric, value in stats.items():
                writer.writerow([label, metric, f"{value:.9g}"])
                count += 1
    return count
