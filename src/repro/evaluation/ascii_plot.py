"""Terminal-friendly plots (the offline stand-in for the paper's matplotlib
figures): scatter plots, CDF curves and histograms rendered as ASCII grids."""

from __future__ import annotations

import numpy as np

__all__ = ["scatter", "cdf_curve", "histogram"]


def _grid(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(
    grid: list[list[str]],
    title: str,
    x_label: str,
    y_label: str,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
) -> str:
    width = len(grid[0])
    lines = [title.center(width + 10)]
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = f"{y_range[1]:.3g}"
        elif r == len(grid) - 1:
            label = f"{y_range[0]:.3g}"
        lines.append(f"{label:>9s} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    left = f"{x_range[0]:.3g}"
    right = f"{x_range[1]:.3g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * 11 + left + " " * pad + right)
    lines.append(f"{'':>11s}{x_label}  (y: {y_label})")
    return "\n".join(lines)


def scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 60,
    height: int = 20,
    title: str = "scatter",
    x_label: str = "x",
    y_label: str = "y",
    diagonal: bool = False,
) -> str:
    """ASCII scatter plot; ``diagonal=True`` overlays the y=x reference."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or x.shape != y.shape:
        raise ValueError("scatter needs equal-length non-empty arrays")
    lo = float(min(x.min(), y.min() if diagonal else x.min()))
    hi = float(max(x.max(), y.max() if diagonal else x.max()))
    y_lo, y_hi = (lo, hi) if diagonal else (float(y.min()), float(y.max()))
    x_lo, x_hi = (lo, hi) if diagonal else (float(x.min()), float(x.max()))
    span_x = (x_hi - x_lo) or 1.0
    span_y = (y_hi - y_lo) or 1.0
    grid = _grid(width, height)
    if diagonal:
        for c in range(width):
            value = x_lo + (c + 0.5) / width * span_x
            r = height - 1 - int((value - y_lo) / span_y * (height - 1) + 0.5)
            if 0 <= r < height:
                grid[r][c] = "."
    for xi, yi in zip(x, y):
        c = int((xi - x_lo) / span_x * (width - 1) + 0.5)
        r = height - 1 - int((yi - y_lo) / span_y * (height - 1) + 0.5)
        if 0 <= r < height and 0 <= c < width:
            grid[r][c] = "o"
    return _render(grid, title, x_label, y_label, (x_lo, x_hi), (y_lo, y_hi))


def cdf_curve(
    values: np.ndarray,
    width: int = 60,
    height: int = 16,
    title: str = "CDF",
    x_label: str = "value",
) -> str:
    """ASCII empirical CDF of ``values``."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("cdf_curve needs a non-empty array")
    lo, hi = float(values[0]), float(values[-1])
    span = (hi - lo) or 1.0
    grid = _grid(width, height)
    for c in range(width):
        x_val = lo + (c + 0.5) / width * span
        frac = np.searchsorted(values, x_val, side="right") / values.size
        r = height - 1 - int(frac * (height - 1) + 0.5)
        grid[r][c] = "#"
    return _render(grid, title, x_label, "F(x)", (lo, hi), (0.0, 1.0))


def histogram(
    values: np.ndarray,
    bins: int = 12,
    width: int = 48,
    title: str = "histogram",
) -> str:
    """Horizontal ASCII histogram."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("histogram needs a non-empty array")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() or 1
    lines = [title]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:>10.4g}, {hi:>10.4g})  {bar} {count}")
    return "\n".join(lines)
