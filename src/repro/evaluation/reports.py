"""Figure 4 data: Top-N paths with most delay (the demo's visibility view).

The demo notebook displays the "Top-10 paths with more delay" according to
RouteNet's predictions.  Here the same computation is exposed as data (a
ranked table) plus ranking-agreement statistics against the ground truth,
which quantify whether the predicted Top-N is trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["RankedPath", "top_n_paths", "ranking_agreement", "format_top_paths"]


@dataclass(frozen=True)
class RankedPath:
    """One row of the Top-N report."""

    rank: int
    src: int
    dst: int
    predicted_delay: float
    true_delay: float | None = None


def top_n_paths(
    pairs: tuple[tuple[int, int], ...],
    predicted_delay: np.ndarray,
    n: int = 10,
    true_delay: np.ndarray | None = None,
) -> list[RankedPath]:
    """Rank paths by predicted delay, descending; ties broken by pair.

    Args:
        pairs: Pair per prediction.
        predicted_delay: Model estimates, aligned with ``pairs``.
        n: Rows to return.
        true_delay: Optional ground truth to attach per row.
    """
    predicted_delay = np.asarray(predicted_delay, dtype=float)
    if len(pairs) != predicted_delay.shape[0]:
        raise ValueError(
            f"{len(pairs)} pairs vs {predicted_delay.shape[0]} predictions"
        )
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    order = sorted(
        range(len(pairs)), key=lambda i: (-predicted_delay[i], pairs[i])
    )
    rows = []
    for rank, i in enumerate(order[:n], start=1):
        rows.append(
            RankedPath(
                rank=rank,
                src=pairs[i][0],
                dst=pairs[i][1],
                predicted_delay=float(predicted_delay[i]),
                true_delay=float(true_delay[i]) if true_delay is not None else None,
            )
        )
    return rows


def ranking_agreement(
    predicted_delay: np.ndarray, true_delay: np.ndarray, n: int = 10
) -> dict[str, float]:
    """How well the predicted ranking matches the true one.

    Returns:
        ``top_n_overlap``: fraction of the true Top-N recovered by the
        predicted Top-N; ``spearman``: rank correlation over all paths.
    """
    predicted_delay = np.asarray(predicted_delay, dtype=float)
    true_delay = np.asarray(true_delay, dtype=float)
    if predicted_delay.shape != true_delay.shape:
        raise ValueError("prediction/truth shape mismatch")
    if predicted_delay.size < 2:
        raise ValueError("need at least two paths to compare rankings")
    n = min(n, predicted_delay.size)
    pred_top = set(np.argsort(-predicted_delay)[:n].tolist())
    true_top = set(np.argsort(-true_delay)[:n].tolist())
    rho = _scipy_stats.spearmanr(predicted_delay, true_delay).statistic
    return {
        "top_n_overlap": len(pred_top & true_top) / n,
        "spearman": float(rho),
        "n": float(n),
    }


def format_top_paths(rows: list[RankedPath]) -> str:
    """Render the Top-N table as text (the Fig. 4 screenshot equivalent)."""
    if not rows:
        raise ValueError("no rows to format")
    has_truth = rows[0].true_delay is not None
    header = f"{'rank':>4s}  {'path':>9s}  {'predicted':>12s}"
    if has_truth:
        header += f"  {'simulated':>12s}  {'rel.err':>8s}"
    lines = [header, "-" * len(header)]
    for row in rows:
        line = f"{row.rank:>4d}  {row.src:>4d}->{row.dst:<4d}  {row.predicted_delay:>12.5f}"
        if has_truth and row.true_delay is not None:
            rel = (row.predicted_delay - row.true_delay) / row.true_delay
            line += f"  {row.true_delay:>12.5f}  {rel:>+8.1%}"
        lines.append(line)
    return "\n".join(lines)
