"""Evaluation harness: figure-data computation and ASCII rendering."""

from .regression import RegressionData, collect_regression, binned_means
from .error_cdf import ErrorCDF, compute_error_cdf, cdf_table
from .reports import RankedPath, top_n_paths, ranking_agreement, format_top_paths
from .ascii_plot import scatter, cdf_curve, histogram
from .export import (
    export_regression_csv,
    export_cdf_csv,
    export_top_paths_csv,
    export_matrix_csv,
)

from .breakdown import error_by_path_length, format_breakdown

__all__ = [
    "error_by_path_length",
    "format_breakdown",
    "export_regression_csv",
    "export_cdf_csv",
    "export_top_paths_csv",
    "export_matrix_csv",
    "RegressionData",
    "collect_regression",
    "binned_means",
    "ErrorCDF",
    "compute_error_cdf",
    "cdf_table",
    "RankedPath",
    "top_n_paths",
    "ranking_agreement",
    "format_top_paths",
    "scatter",
    "cdf_curve",
    "histogram",
]
