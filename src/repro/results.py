"""Typed result objects shared by the public :mod:`repro.api` surface.

Historically ``Trainer.evaluate`` and ``RouteNet.predict`` returned ad-hoc
nested dicts (``{"delay": {...}, "jitter": {...}}`` / ``{"delay": array}``)
whose optional keys every caller had to re-discover.  These dataclasses are
the single return shape used everywhere now; dict-style access (``result
["delay"]``, ``"jitter" in result``) keeps working as a thin deprecation shim
so existing code migrates at its own pace.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .errors import ReproDeprecationWarning

__all__ = ["Metrics", "EvalResult", "PredictResult"]


def _warn_dict_access(kind: str) -> None:
    warnings.warn(
        f"dict-style access to {kind} is deprecated; use attribute access "
        f"(e.g. result.delay) instead",
        ReproDeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Metrics:
    """Pooled regression metrics for one target (delay or jitter)."""

    mre: float
    medre: float
    rmse: float
    r2: float
    pearson: float
    count: float

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "Metrics":
        return cls(**{name: float(data[name]) for name in cls.__dataclass_fields__})

    def to_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    # -- deprecation shim: metrics["mre"] --------------------------------
    def __getitem__(self, key: str) -> float:
        if key not in self.__dataclass_fields__:
            raise KeyError(key)
        _warn_dict_access("Metrics")
        return getattr(self, key)

    def keys(self) -> Iterator[str]:
        return iter(self.__dataclass_fields__)

    def __iter__(self) -> Iterator[str]:
        return iter(self.__dataclass_fields__)


@dataclass(frozen=True)
class EvalResult:
    """Per-target metrics of one evaluation run.

    ``jitter`` is ``None`` for delay-only models (``readout_targets == 1``).
    """

    delay: Metrics
    jitter: Metrics | None = None

    def to_dict(self) -> dict[str, dict[str, float]]:
        out = {"delay": self.delay.to_dict()}
        if self.jitter is not None:
            out["jitter"] = self.jitter.to_dict()
        return out

    def targets(self) -> tuple[str, ...]:
        """Names of the targets present in this result."""
        return ("delay",) if self.jitter is None else ("delay", "jitter")

    # -- deprecation shim: result["delay"]["mre"], result.items() --------
    def __getitem__(self, key: str) -> Metrics:
        value = {"delay": self.delay, "jitter": self.jitter}.get(key)
        if value is None:
            raise KeyError(key)
        _warn_dict_access("EvalResult")
        return value

    def __contains__(self, key: str) -> bool:
        return key in self.targets()

    def __iter__(self) -> Iterator[str]:
        return iter(self.targets())

    def keys(self) -> Iterator[str]:
        return iter(self.targets())

    def items(self) -> Iterator[tuple[str, Metrics]]:
        return ((name, getattr(self, name)) for name in self.targets())


@dataclass(frozen=True)
class PredictResult:
    """Raw-unit per-path predictions for one sample / query.

    Attributes:
        pairs: The (src, dst) pairs the rows are aligned to.
        delay: (P,) predicted mean per-packet delay in seconds.
        jitter: (P,) predicted delay variance, or ``None`` for delay-only
            models.
    """

    pairs: tuple[tuple[int, int], ...]
    delay: np.ndarray
    jitter: np.ndarray | None = None

    @property
    def num_paths(self) -> int:
        return len(self.pairs)

    def targets(self) -> tuple[str, ...]:
        return ("delay",) if self.jitter is None else ("delay", "jitter")

    def to_dict(self) -> dict[str, np.ndarray]:
        out = {"delay": self.delay}
        if self.jitter is not None:
            out["jitter"] = self.jitter
        return out

    # -- deprecation shim: pred["delay"], "jitter" in pred ---------------
    def __getitem__(self, key: str) -> np.ndarray:
        value = {"delay": self.delay, "jitter": self.jitter}.get(key)
        if value is None:
            raise KeyError(key)
        _warn_dict_access("PredictResult")
        return value

    def __contains__(self, key: str) -> bool:
        return key in self.targets()

    def __iter__(self) -> Iterator[str]:
        return iter(self.targets())

    def keys(self) -> Iterator[str]:
        return iter(self.targets())
