"""Raw-numpy inference kernel for :class:`~repro.core.RouteNet`.

``RouteNet.forward`` builds an autodiff graph: every op allocates a
:class:`~repro.nn.Tensor`, captures a backward closure, and materializes
intermediate temporaries.  None of that is needed at serving time, and at
RouteNet's state widths (tens of columns) the overhead dominates — the
actual matmul FLOPs are a small fraction of the forward wall-clock.

``fast_forward`` replays the arithmetic of ``RouteNet.forward`` on plain
ndarrays with the same per-row operation order (the serving tests pin
agreement with the autodiff path at 1e-10), plus inference-only
restructurings that the graph-recording path cannot do:

* the path cell's input projection ``x @ W`` is computed once per
  message-passing round over the ~L link states and *gathered* per
  timestep, instead of re-multiplying the ~P gathered rows every step;
* at each timestep only the *active* path rows (``mask[:, t]``) are
  updated.  ``forward`` runs the cell over all rows and discards inactive
  results via ``where``; in a fused batch most rows of short-path samples
  are inactive at late timesteps, so compaction is what makes packing pay;
* per-link message aggregation uses a precomputed stable-sort schedule and
  ``np.add.reduceat`` instead of ``np.add.at`` (which dispatches per
  element);
* the wasted candidate-gate columns of the GRU's recurrent matmul are
  skipped (``forward`` computes ``h @ U`` in full but only uses the
  update/reset slices).

Only the stock module zoo (Dense/MLP + GRU/RNN cells) is supported;
:func:`supports_fast_forward` lets callers fall back to ``model.forward``
for anything exotic.
"""

from __future__ import annotations

import numpy as np

from ..core import ModelInput, RouteNet
from ..errors import ModelError
from ..nn.layers import MLP, Dense
from ..nn.rnn import GRUCell, RNNCell

__all__ = ["fast_forward", "supports_fast_forward"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Matches nn.ops.sigmoid's stable logistic: both branches divide by the
    # same 1 + exp(-|x|).  ops.sigmoid clips to [-500, 500] first; skipping
    # the clip only matters past the float64 underflow of exp(-500), far
    # below serving tolerance.
    e = np.abs(x)
    np.negative(e, out=e)
    np.exp(e, out=e)
    num = np.where(x >= 0, 1.0, e)
    e += 1.0
    num /= e
    return num


_ACTIVATIONS = {
    "linear": lambda x: x,
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": _sigmoid,
    "softplus": lambda x: np.logaddexp(0.0, x),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
}


def _dense(layer: Dense, x: np.ndarray) -> np.ndarray:
    out = x @ layer.weight.data
    if layer.bias is not None:
        out = out + layer.bias.data
    return _ACTIVATIONS[layer.activation](out)


def _mlp(mlp: MLP, x: np.ndarray) -> np.ndarray:
    for layer in mlp.layers:
        x = _dense(layer, x)
    return x


# ----------------------------------------------------------------------
# Cell steps.  ``_*_precompute`` lifts the input projection of the *path*
# cell out of the timestep loop: its input rows are gathers of the link
# states, which are constant within one message-passing round.  The
# ``gx``-taking steps receive those gathered projections.
# ----------------------------------------------------------------------
def _gru_precompute(cell: GRUCell, x: np.ndarray) -> np.ndarray:
    return x @ cell.w.data + cell.bias.data


def _gru_step_gx(cell: GRUCell, gx: np.ndarray, h: np.ndarray) -> np.ndarray:
    hs = cell.hidden_size
    u = cell.u.data
    # In-place accumulation; float addition commutes bitwise, so this stays
    # identical to forward's ``gx + h @ U``.  One contiguous sigmoid covers
    # both gates (elementwise, so slicing after gating changes nothing).
    gates_zr = h @ u[:, : 2 * hs]
    gates_zr += gx[:, : 2 * hs]
    gates_zr = _sigmoid(gates_zr)
    z = gates_zr[:, :hs]
    r = gates_zr[:, hs:]
    n = (r * h) @ u[:, 2 * hs :]
    n += gx[:, 2 * hs :]
    np.tanh(n, out=n)
    out = 1.0 - z
    out *= n
    out += z * h
    return out


def _rnn_precompute(cell: RNNCell, x: np.ndarray) -> np.ndarray:
    # Bias joins after the recurrent term to keep forward's (xW + hU) + b
    # association.
    return x @ cell.w.data


def _rnn_step_gx(cell: RNNCell, gx: np.ndarray, h: np.ndarray) -> np.ndarray:
    return np.tanh(gx + h @ cell.u.data + cell.bias.data)


_CELLS = {
    GRUCell: (_gru_precompute, _gru_step_gx),
    RNNCell: (_rnn_precompute, _rnn_step_gx),
}


def _cell_step(cell, x: np.ndarray, h: np.ndarray) -> np.ndarray:
    precompute, step = _CELLS[type(cell)]
    return step(cell, precompute(cell, x), h)


def supports_fast_forward(model: RouteNet) -> bool:
    """True when the model is built from modules the kernel can replay."""
    return (
        type(model.path_cell) in _CELLS
        and type(model.link_cell) in _CELLS
        and type(model.link_embed) is Dense
        and type(model.path_embed) is Dense
        and type(model.readout) is MLP
        and all(type(layer) is Dense for layer in model.readout.layers)
    )


def fast_forward(model: RouteNet, inputs: ModelInput) -> np.ndarray:
    """Inference-only forward pass; returns scaled (P, targets) predictions.

    Numerically equivalent to ``model.forward(inputs, training=False)`` —
    same message-passing schedule, same per-row arithmetic — minus the
    autodiff machinery.
    """
    hp = model.hparams
    if inputs.link_features.shape[1] != hp.link_feature_dim:
        raise ModelError(
            f"model expects {hp.link_feature_dim} link features, input has "
            f"{inputs.link_features.shape[1]} (hint: include_load mismatch)"
        )
    if inputs.path_features.shape[1] != hp.path_feature_dim:
        raise ModelError(
            f"model expects {hp.path_feature_dim} path features, input has "
            f"{inputs.path_features.shape[1]} (hint: QoS-class one-hot "
            f"mismatch — classed models need classed samples)"
        )
    path_pre, path_step = _CELLS[type(model.path_cell)]

    num_links = inputs.num_links
    h_link = _dense(model.link_embed, inputs.link_features)
    h_path = _dense(model.path_embed, inputs.path_features)

    link_idx = inputs.link_indices
    mask = inputs.mask  # identical to link_idx >= 0 by construction

    # Everything index-shaped is input-only — hoist it out of the rounds.
    # Per timestep: the active rows (None = all), their link ids, and a
    # stable-sort aggregation schedule (segment members stay in row order,
    # so per-bucket summation order matches segment_sum's).
    schedule = []
    for t in range(inputs.max_path_length):
        active = mask[:, t]
        if not active.any():
            break
        rows = None if active.all() else np.flatnonzero(active)
        ids = link_idx[:, t] if rows is None else link_idx[rows, t]
        order = np.argsort(ids, kind="stable")
        uniq, starts = np.unique(ids[order], return_index=True)
        schedule.append((rows, ids, order, uniq, starts))

    # One aggregation buffer for every round; zero-filled in place each
    # round (nothing downstream keeps a view into it across rounds).
    message_sum = np.zeros((num_links, h_path.shape[1]))
    for _ in range(hp.message_passing_steps):
        gx_all = path_pre(model.path_cell, h_link)
        message_sum[:] = 0.0
        for rows, ids, order, uniq, starts in schedule:
            if rows is None:
                h_path = path_step(model.path_cell, gx_all[ids], h_path)
                values = h_path
            else:
                values = path_step(model.path_cell, gx_all[ids], h_path[rows])
                h_path[rows] = values
            message_sum[uniq] += np.add.reduceat(values[order], starts, axis=0)
        h_link = _cell_step(model.link_cell, message_sum, h_link)

    return _mlp(model.readout, h_path)
