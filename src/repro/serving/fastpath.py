"""Raw-numpy inference kernel for :class:`~repro.core.RouteNet`.

``RouteNet.forward`` builds an autodiff graph: every op allocates a
:class:`~repro.nn.Tensor`, captures a backward closure, and materializes
intermediate temporaries.  None of that is needed at serving time, and at
RouteNet's state widths (tens of columns) the overhead dominates — the
actual matmul FLOPs are a small fraction of the forward wall-clock.

``fast_forward`` replays the arithmetic of ``RouteNet.forward`` on plain
ndarrays with the same per-row operation order (the serving tests pin
agreement with the autodiff path at 1e-10), plus inference-only
restructurings that the graph-recording path cannot do:

* the path cell's input projection ``x @ W`` is computed once per
  message-passing round over the ~L link states and *gathered* per
  timestep, instead of re-multiplying the ~P gathered rows every step;
* at each timestep only the *active* path rows (``mask[:, t]``) are
  updated.  ``forward`` runs the cell over all rows and discards inactive
  results via ``where``; in a fused batch most rows of short-path samples
  are inactive at late timesteps, so compaction is what makes packing pay;
* per-link message aggregation uses a precomputed stable-sort schedule and
  ``np.add.reduceat`` instead of ``np.add.at`` (which dispatches per
  element);
* the wasted candidate-gate columns of the GRU's recurrent matmul are
  skipped (``forward`` computes ``h @ U`` in full but only uses the
  update/reset slices).

Only the stock module zoo (Dense/MLP + GRU/RNN cells) is supported;
:func:`supports_fast_forward` lets callers fall back to ``model.forward``
for anything exotic.
"""

from __future__ import annotations

import numpy as np

from ..core import ModelInput, RouteNet
from ..core.plan import InferenceArena, plan_for
from ..errors import ModelError
from ..nn.layers import MLP, Dense
from ..nn.rnn import GRUCell, RNNCell

__all__ = ["fast_forward", "supports_fast_forward"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Matches nn.ops.sigmoid's stable logistic: both branches divide by the
    # same 1 + exp(-|x|).  ops.sigmoid clips to [-500, 500] first; skipping
    # the clip only matters past the float64 underflow of exp(-500), far
    # below serving tolerance.
    e = np.abs(x)
    np.negative(e, out=e)
    np.exp(e, out=e)
    num = np.where(x >= 0, 1.0, e)
    e += 1.0
    num /= e
    return num


_ACTIVATIONS = {
    "linear": lambda x: x,
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": _sigmoid,
    "softplus": lambda x: np.logaddexp(0.0, x),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
}


def _dense(layer: Dense, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Dense layer; ``out`` directs the result into an arena view.

    The in-place forms are bitwise-identical to the allocating ones: the
    matmul is the same GEMM, ``+=`` is the same add ufunc, and the
    activation is fully materialized before the copy-back, so no operand is
    read after being written.
    """
    if out is None:
        h = x @ layer.weight.data
        if layer.bias is not None:
            h = h + layer.bias.data
        return _ACTIVATIONS[layer.activation](h)
    np.matmul(x, layer.weight.data, out=out)
    if layer.bias is not None:
        out += layer.bias.data
    if layer.activation != "linear":
        out[...] = _ACTIVATIONS[layer.activation](out)
    return out


def _mlp(mlp: MLP, x: np.ndarray) -> np.ndarray:
    for layer in mlp.layers:
        x = _dense(layer, x)
    return x


# ----------------------------------------------------------------------
# Cell steps.  ``_*_precompute`` lifts the input projection of the *path*
# cell out of the timestep loop: its input rows are gathers of the link
# states, which are constant within one message-passing round.  The
# ``gx``-taking steps receive those gathered projections.
# ----------------------------------------------------------------------
def _gru_precompute(
    cell: GRUCell, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    if out is None:
        return x @ cell.w.data + cell.bias.data
    np.matmul(x, cell.w.data, out=out)
    out += cell.bias.data
    return out


def _gru_step_gx(
    cell: GRUCell, gx: np.ndarray, h: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    hs = cell.hidden_size
    u = cell.u.data
    # In-place accumulation; float addition commutes bitwise, so this stays
    # identical to forward's ``gx + h @ U``.  One contiguous sigmoid covers
    # both gates (elementwise, so slicing after gating changes nothing).
    gates_zr = h @ u[:, : 2 * hs]
    gates_zr += gx[:, : 2 * hs]
    gates_zr = _sigmoid(gates_zr)
    z = gates_zr[:, :hs]
    r = gates_zr[:, hs:]
    n = (r * h) @ u[:, 2 * hs :]
    n += gx[:, 2 * hs :]
    np.tanh(n, out=n)
    # ``out`` may be an arena slot; it never aliases z/n/h (z and n are
    # fresh temporaries, and the planner proves the destination slot
    # disjoint from the live h slot), so the in-place chain reads nothing
    # it has written.
    if out is None:
        out = 1.0 - z
    else:
        np.subtract(1.0, z, out=out)
    out *= n
    out += z * h
    return out


def _rnn_precompute(
    cell: RNNCell, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    # Bias joins after the recurrent term to keep forward's (xW + hU) + b
    # association.
    if out is None:
        return x @ cell.w.data
    np.matmul(x, cell.w.data, out=out)
    return out


def _rnn_step_gx(
    cell: RNNCell, gx: np.ndarray, h: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    pre = gx + h @ cell.u.data + cell.bias.data
    if out is None:
        return np.tanh(pre)
    np.tanh(pre, out=out)
    return out


_CELLS = {
    GRUCell: (_gru_precompute, _gru_step_gx),
    RNNCell: (_rnn_precompute, _rnn_step_gx),
}


def _cell_step(cell, x: np.ndarray, h: np.ndarray,
               out: np.ndarray | None = None) -> np.ndarray:
    precompute, step = _CELLS[type(cell)]
    return step(cell, precompute(cell, x), h, out=out)


def supports_fast_forward(model: RouteNet) -> bool:
    """True when the model is built from modules the kernel can replay."""
    return (
        type(model.path_cell) in _CELLS
        and type(model.link_cell) in _CELLS
        and type(model.link_embed) is Dense
        and type(model.path_embed) is Dense
        and type(model.readout) is MLP
        and all(type(layer) is Dense for layer in model.readout.layers)
    )


def _arena_eligible(model: RouteNet, inputs: ModelInput) -> bool:
    """Arena slots are carved in the model's parameter dtype; mixed-dtype
    runs would upcast mid-pass and are routed to the unplanned path."""
    dtype = model.path_cell.w.data.dtype
    return (
        inputs.link_features.dtype == dtype
        and inputs.path_features.dtype == dtype
        and model.link_embed.weight.data.dtype == dtype
        and model.path_embed.weight.data.dtype == dtype
        and model.link_cell.w.data.dtype == dtype
    )


def fast_forward(
    model: RouteNet,
    inputs: ModelInput,
    arena: "InferenceArena | str | None" = "auto",
) -> np.ndarray:
    """Inference-only forward pass; returns scaled (P, targets) predictions.

    Numerically equivalent to ``model.forward(inputs, training=False)`` —
    same message-passing schedule, same per-row arithmetic — minus the
    autodiff machinery.

    Args:
        model: The RouteNet to replay (see :func:`supports_fast_forward`).
        inputs: One (possibly fused) :class:`~repro.core.ModelInput`.
        arena: Where the link/path-state buffers live.  ``"auto"`` (default)
            runs them out of the input's cached
            :class:`~repro.core.plan.InferenceArena` — one preallocated,
            liveness-planned block whose layout the dataflow pass proved
            non-overlapping, so repeated calls allocate nothing for state
            and peak memory stays flat in the round count.  ``None``
            allocates per call (the historical behavior); an explicit
            :class:`InferenceArena` is used as given.  The arena is locked
            non-blockingly: concurrent callers that lose the race fall back
            to the unplanned path, which is bitwise identical (pinned by
            the serving tests), so results never depend on the lock.
    """
    hp = model.hparams
    if inputs.link_features.shape[1] != hp.link_feature_dim:
        raise ModelError(
            f"model expects {hp.link_feature_dim} link features, input has "
            f"{inputs.link_features.shape[1]} (hint: include_load mismatch)"
        )
    if inputs.path_features.shape[1] != hp.path_feature_dim:
        raise ModelError(
            f"model expects {hp.path_feature_dim} path features, input has "
            f"{inputs.path_features.shape[1]} (hint: QoS-class one-hot "
            f"mismatch — classed models need classed samples)"
        )
    path_pre, path_step = _CELLS[type(model.path_cell)]

    use: InferenceArena | None = None
    if isinstance(arena, InferenceArena):
        use = arena if arena.acquire() else None
    elif arena == "auto" and _arena_eligible(model, inputs):
        candidate = plan_for(inputs).arena_for(model)
        use = candidate if candidate.acquire() else None
    try:
        return _run_forward(model, inputs, path_pre, path_step, use)
    finally:
        if use is not None:
            use.release()


def _run_forward(
    model: RouteNet,
    inputs: ModelInput,
    path_pre,
    path_step,
    use: "InferenceArena | None",
) -> np.ndarray:
    hp = model.hparams
    num_links = inputs.num_links
    rounds = hp.message_passing_steps

    if use is None:
        h_link = _dense(model.link_embed, inputs.link_features)
        h_path = _dense(model.path_embed, inputs.path_features)
    else:
        h_link = _dense(
            model.link_embed, inputs.link_features, out=use.view("h_link/0")
        )
        h_path = _dense(
            model.path_embed, inputs.path_features, out=use.view("h_path")
        )

    link_idx = inputs.link_indices
    mask = inputs.mask  # identical to link_idx >= 0 by construction

    # Everything index-shaped is input-only — hoist it out of the rounds.
    # Per timestep: the active rows (None = all), their link ids, and a
    # stable-sort aggregation schedule (segment members stay in row order,
    # so per-bucket summation order matches segment_sum's).
    schedule = []
    for t in range(inputs.max_path_length):
        active = mask[:, t]
        if not active.any():
            break
        rows = None if active.all() else np.flatnonzero(active)
        ids = link_idx[:, t] if rows is None else link_idx[rows, t]
        order = np.argsort(ids, kind="stable")
        uniq, starts = np.unique(ids[order], return_index=True)
        schedule.append((rows, ids, order, uniq, starts))

    # Unplanned: one aggregation buffer for every non-final round, zeroed
    # in place (nothing downstream keeps a view into it across rounds).
    # The final round's aggregation and link update are dead code — the
    # readout consumes path states only (RP602) — and are skipped, which
    # leaves the output bit-identical while dropping one segment scatter
    # per timestep plus a whole link-cell step.
    message_sum = (
        np.zeros((num_links, h_path.shape[1]))
        if use is None and rounds > 1 else None
    )
    for r in range(rounds):
        last_round = r == rounds - 1
        gx_all = path_pre(
            model.path_cell, h_link,
            out=use.view(f"gx/{r}") if use is not None else None,
        )
        if not last_round:
            msg = message_sum if use is None else use.view(f"msg/{r}")
            msg[:] = 0.0
        for rows, ids, order, uniq, starts in schedule:
            if rows is None:
                values = path_step(model.path_cell, gx_all[ids], h_path)
                if use is None:
                    h_path = values
                else:
                    # Full-slice copy into the arena slot: ``values`` is a
                    # fresh temporary, so the copy is bitwise the same
                    # state the unplanned path rebinds to.
                    h_path[...] = values
            else:
                values = path_step(model.path_cell, gx_all[ids], h_path[rows])
                h_path[rows] = values
            if not last_round:
                msg[uniq] += np.add.reduceat(values[order], starts, axis=0)
        if not last_round:
            h_link = _cell_step(
                model.link_cell, msg, h_link,
                out=use.view(f"h_link/{r + 1}") if use is not None else None,
            )

    return _mlp(model.readout, h_path)
