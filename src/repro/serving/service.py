"""Request-queue serving service: the online "digital twin" entry point.

:class:`~repro.serving.InferenceEngine` batches well but is call-driven —
somebody must already hold N queries to fuse them.  An SDN controller asking
what-if questions online holds one query at a time; the batching opportunity
only exists *across* concurrent callers.  :class:`ServingService` is that
aggregation point: a threaded request queue in front of per-shard engines,
with

* **deadline-aware dynamic batch coalescing** — a worker opens a batch on the
  first queued request and cuts it at ``max_batch`` requests, ``max_wait_ms``
  after opening, or just before the earliest per-request deadline among the
  collected requests, whichever comes first (``coalesce="count"`` cuts on
  count alone, making batch composition a pure function of submit order — the
  benchmark's bitwise-reproducibility mode);
* **worker sharding by** :class:`TopologySignature` — requests for the same
  topology always land on the same worker, so that worker's
  :class:`~repro.serving.InputCache` entries (and the forward-plan memos
  hanging off the cached ``ModelInput`` objects) stay hot instead of being
  rebuilt by whichever thread got the request;
* **a shared prediction cache** — one thread-safe
  :class:`~repro.serving.PredictionCache` layered above every shard's input
  cache: a repeated query skips the forward pass in whichever shard serves
  it;
* **admission control** — a bounded queue that *rejects with a reason*
  (:class:`~repro.errors.AdmissionError` with ``reason="queue_full"`` /
  ``"shutdown"``) instead of blocking the caller, per-request deadlines that
  expire still-queued work (:class:`~repro.errors.DeadlineExceededError`),
  and a graceful drain on :meth:`close`.

Submission is non-blocking: :meth:`submit` returns a :class:`ServeFuture`
that resolves to a :class:`~repro.results.PredictResult` (or the error that
befell the request).  The service owns only threads — no processes, no
sockets — so it composes with the spawn-safe :mod:`repro.runner` machinery
and needs nothing beyond the standard library.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .. import tsan
from ..core import FeatureScaler, RouteNet
from ..dataset import Sample
from ..errors import AdmissionError, DeadlineExceededError
from ..results import PredictResult
from ..topology import Topology
from .cache import PredictionCache
from .config import ServeConfig
from .engine import InferenceEngine

__all__ = ["TopologySignature", "ServeFuture", "ServingService"]


# ----------------------------------------------------------------------
# Topology identity
# ----------------------------------------------------------------------
# id -> (weakref to the signed topology, its signature): same discipline as
# InputCache's digest memo — the weakref guarantees a recycled id can never
# serve a dead topology's signature.
_SIGNATURE_MEMO: dict[int, tuple[weakref.ref, "TopologySignature"]] = {}


@dataclass(frozen=True)
class TopologySignature:
    """Content-addressed identity of a topology's *structure*.

    Two topologies with the same nodes, links, capacities and propagation
    delays sign identically regardless of object identity or name, so the
    service's shard routing is stable across processes and runs — a property
    Python's salted ``hash()`` does not give.

    Attributes:
        num_nodes / num_links: Cheap discriminators, handy in logs.
        digest: SHA-256 over the canonical link list.
    """

    num_nodes: int
    num_links: int
    digest: str

    @classmethod
    def of(cls, topology: Topology) -> "TopologySignature":
        """The (memoized) signature of ``topology``."""
        memo = _SIGNATURE_MEMO.get(id(topology))
        if memo is not None and memo[0]() is topology:
            return memo[1]
        payload = json.dumps(
            {
                "num_nodes": topology.num_nodes,
                "links": [
                    [l.src, l.dst, l.capacity, l.propagation_delay]
                    for l in topology.links
                ],
            },
            sort_keys=True,
        ).encode()
        sig = cls(
            num_nodes=topology.num_nodes,
            num_links=len(topology.links),
            digest=hashlib.sha256(payload).hexdigest(),
        )
        try:
            _SIGNATURE_MEMO[id(topology)] = (weakref.ref(topology), sig)
        except TypeError:
            pass  # un-weakref-able stand-ins (tests) are simply re-hashed
        return sig

    def shard(self, workers: int) -> int:
        """Deterministic worker index in ``[0, workers)`` for this topology."""
        return int(self.digest[:16], 16) % workers


# ----------------------------------------------------------------------
# Futures and requests
# ----------------------------------------------------------------------
class ServeFuture:
    """Completion handle for one submitted query.

    Timestamps (``submitted_at`` / ``completed_at``) are on the service's
    clock (``time.perf_counter`` by default) so the load harness can compute
    queueing + service latency without a second timing source.
    """

    __slots__ = ("shard", "submitted_at", "completed_at", "_event", "_result", "_error")

    def __init__(self, shard: int, submitted_at: float) -> None:
        self.shard = shard
        self.submitted_at = submitted_at
        self.completed_at: float | None = None
        self._event = threading.Event()
        self._result: PredictResult | None = None
        self._error: Exception | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> PredictResult:
        """Block until resolution; the prediction, or raises the request's
        error (:class:`DeadlineExceededError`, a serving failure, ...)."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not complete yet")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> Exception | None:
        """Block until resolution; the request's error, or ``None``."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not complete yet")
        return self._error

    @property
    def latency_s(self) -> float | None:
        """Submission-to-completion seconds; ``None`` while pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    # -- resolution (service-internal) -----------------------------------
    def _complete(self, result: PredictResult, now: float) -> None:
        self._result = result
        self.completed_at = now
        self._event.set()

    def _fail(self, error: Exception, now: float) -> None:
        self._error = error
        self.completed_at = now
        self._event.set()


@dataclass
class _Request:
    sample: Sample
    future: ServeFuture
    deadline: float | None  # absolute, on the service clock; None = never
    seq: int = field(default=0)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class ServingService:
    """Threaded deadline-aware dynamic batcher over per-shard engines.

    Args:
        model / scaler: As for :class:`~repro.serving.InferenceEngine`.
        config: Typed serving knobs; library defaults when omitted.  The
            service consumes every field: queue/worker/coalescing fields
            directly, engine fields through the per-shard engines.
        clock: Monotonic time source (injectable for tests); deadlines,
            coalescing windows and future timestamps all read it.

    Workers start immediately; use as a context manager (or call
    :meth:`close`) to stop them.  Determinism: for a fixed submit order and
    worker count, shard routing is content-addressed and per-shard FIFO order
    is preserved, so with ``coalesce="count"`` the batch composition — and
    therefore every served float — reproduces bitwise run-to-run.
    """

    def __init__(
        self,
        model: RouteNet,
        scaler: FeatureScaler,
        config: ServeConfig | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.config = config or ServeConfig()
        self._clock = clock
        cfg = self.config
        # One prediction cache above all shards; each shard engine keeps its
        # own input cache (sharding makes those naturally disjoint).
        self.prediction_cache = (
            PredictionCache(cfg.prediction_cache_size)
            if cfg.prediction_cache_size > 0
            else None
        )
        engine_cfg = cfg.replace(prediction_cache_size=0)
        self._engines = [
            InferenceEngine(
                model, scaler, engine_cfg, prediction_cache=self.prediction_cache
            )
            for _ in range(cfg.workers)
        ]
        self._shard_capacity = max(1, cfg.queue_depth // cfg.workers)
        self._queues: list[deque[_Request]] = [deque() for _ in range(cfg.workers)]
        # Sync primitives come from the tsan seam so the REPRO_TSAN=1
        # dynamic lockset checker can swap in instrumented versions; by
        # default these *are* the plain threading constructors.
        self._conds = [tsan.make_condition() for _ in range(cfg.workers)]
        # Guarded by the shard's condition (broadcast under every cond in
        # close); readers hold their own shard's cond.
        self._closing = False
        # _closed and _seq are cross-shard state: guarded by _stats_lock.
        self._closed = False
        self._seq = 0
        self._stats_lock = tsan.make_lock()
        self._counters = {
            "accepted": 0,
            "served": 0,
            "expired": 0,
            "errors": 0,
            "rejected_queue_full": 0,
            "rejected_shutdown": 0,
            "queue_high_water": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"repro-serve-{shard}",
                daemon=True,
            )
            for shard in range(cfg.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission / admission control
    # ------------------------------------------------------------------
    def submit(
        self, sample: Sample, *, deadline_ms: float | None = None
    ) -> ServeFuture:
        """Enqueue one query; never blocks on a full queue.

        Args:
            deadline_ms: Per-request override of ``config.deadline_ms``.

        Returns:
            A :class:`ServeFuture` resolving to the prediction.

        Raises:
            AdmissionError: ``reason="queue_full"`` when the target shard's
                queue is at capacity, ``reason="shutdown"`` after
                :meth:`close` — explicit backpressure the caller can act on
                (shed load, retry elsewhere) instead of silently stalling.
        """
        shard = TopologySignature.of(sample.topology).shard(self.config.workers)
        limit_ms = deadline_ms if deadline_ms is not None else self.config.deadline_ms
        cond = self._conds[shard]
        with cond:
            if self._closing:
                self._count("rejected_shutdown")
                raise AdmissionError("shutdown", "service is shutting down")
            queue = self._queues[shard]
            if len(queue) >= self._shard_capacity:
                self._count("rejected_queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"shard {shard} queue is at capacity "
                    f"({self._shard_capacity} requests)",
                )
            now = self._clock()
            future = ServeFuture(shard, submitted_at=now)
            # The sequence number is global across shards, so the per-shard
            # condition is not enough: two shards incrementing concurrently
            # would lose updates.  Nested stats-lock acquisition follows the
            # service's lock order (shard cond, then stats lock).
            with self._stats_lock:
                tsan.note_access(self, "_seq", "write")
                self._seq += 1
                seq = self._seq
            request = _Request(
                sample=sample,
                future=future,
                deadline=None if limit_ms is None else now + limit_ms / 1000.0,
                seq=seq,
            )
            tsan.note_access(queue, "items", "write")
            queue.append(request)
            depth = len(queue)
            cond.notify()
        with self._stats_lock:
            tsan.note_access(self, "_counters", "write")
            self._counters["accepted"] += 1
            if depth > self._counters["queue_high_water"]:
                self._counters["queue_high_water"] = depth
        return future

    def _count(self, name: str, n: int = 1) -> None:
        with self._stats_lock:
            tsan.note_access(self, "_counters", "write")
            self._counters[name] += n

    # ------------------------------------------------------------------
    # Worker side: coalescing and serving
    # ------------------------------------------------------------------
    def _collect_batch(self, shard: int) -> list[_Request] | None:
        """Block until a batch is cut for ``shard``; ``None`` = worker exit."""
        cfg = self.config
        queue = self._queues[shard]
        cond = self._conds[shard]
        with cond:
            while not queue:
                if self._closing:
                    return None
                cond.wait()
            tsan.note_access(queue, "items", "write")
            batch = [queue.popleft()]
            if cfg.coalesce == "count":
                # Cut on count alone: composition is a pure function of the
                # per-shard arrival order (the bench's determinism mode).
                while len(batch) < cfg.max_batch:
                    if queue:
                        batch.append(queue.popleft())
                    elif self._closing:
                        break
                    else:
                        cond.wait()
                return batch
            opened = self._clock()
            window_end = opened + cfg.max_wait_ms / 1000.0
            cutoff = window_end
            for request in batch:
                if request.deadline is not None and request.deadline < cutoff:
                    cutoff = request.deadline
            # ``closing`` only short-circuits the *waiting*: a drain keeps
            # consuming backlog into full batches.
            while len(batch) < cfg.max_batch:
                if queue:
                    request = queue.popleft()
                    batch.append(request)
                    if request.deadline is not None and request.deadline < cutoff:
                        cutoff = request.deadline
                    continue
                if self._closing:
                    break
                remaining = cutoff - self._clock()
                if remaining <= 0:
                    break
                cond.wait(timeout=remaining)
            return batch

    def _serve_batch(self, shard: int, batch: list[_Request]) -> None:
        now = self._clock()
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                request.future._fail(
                    DeadlineExceededError(
                        f"request expired in queue after "
                        f"{(now - request.future.submitted_at) * 1000:.1f} ms"
                    ),
                    now,
                )
            else:
                live.append(request)
        if len(live) < len(batch):
            self._count("expired", len(batch) - len(live))
        if not live:
            return
        try:
            results = self._engines[shard].predict_many([r.sample for r in live])
        # Not swallowed: the error is delivered to every caller through the
        # futures; broad on purpose so one bad request can't kill a worker.
        except Exception as exc:  # repro-lint: disable=RP004
            done = self._clock()
            for request in live:
                request.future._fail(exc, done)
            self._count("errors", len(live))
            return
        done = self._clock()
        for request, result in zip(live, results):
            request.future._complete(result, done)
        self._count("served", len(live))

    def _worker_loop(self, shard: int) -> None:
        while True:
            batch = self._collect_batch(shard)
            if batch is None:
                return
            self._serve_batch(shard, batch)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service; idempotent.

        Args:
            drain: Serve everything already queued before exiting (default).
                ``False`` fails pending requests with
                ``AdmissionError("shutdown")`` instead.
            timeout: Per-thread join bound in seconds.
        """
        with self._stats_lock:
            tsan.note_access(self, "_closed", "read")
            if self._closed:
                return
        rejected = 0
        for shard, cond in enumerate(self._conds):
            with cond:
                self._closing = True
                if not drain:
                    queue = self._queues[shard]
                    now = self._clock()
                    if queue:
                        tsan.note_access(queue, "items", "write")
                    while queue:
                        request = queue.popleft()
                        request.future._fail(
                            AdmissionError(
                                "shutdown", "service closed before request was served"
                            ),
                            now,
                        )
                        rejected += 1
                cond.notify_all()
        # Counted through _count so the mutation happens under _stats_lock —
        # the bare `self._counters[...] += 1` that used to live in the loop
        # above raced with every other counter update (RP501).
        if rejected:
            self._count("rejected_shutdown", rejected)
        for thread in self._threads:
            thread.join(timeout)
        with self._stats_lock:
            tsan.note_access(self, "_closed", "write")
            self._closed = True

    def __enter__(self) -> "ServingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        with self._stats_lock:
            tsan.note_access(self, "_closed", "read")
            return self._closed

    def pending(self) -> int:
        """Requests currently queued (excludes batches being served)."""
        total = 0
        for cond, queue in zip(self._conds, self._queues):
            with cond:
                tsan.note_access(queue, "items", "read")
                total += len(queue)
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus aggregated per-shard engine stats.

        Returns:
            ``accepted`` / ``served`` / ``expired`` / ``errors`` counts, the
            per-reason rejection counters under ``"rejected"``,
            ``queue_high_water``, the summed engine counters under
            ``"engine"`` (with ``per_worker_queries`` showing the shard
            spread), and the shared prediction-tier counters under
            ``"prediction_cache"`` (``None`` when disabled).
        """
        with self._stats_lock:
            tsan.note_access(self, "_counters", "read")
            counters = dict(self._counters)
        engine_stats = [engine.stats() for engine in self._engines]
        aggregate = {
            name: sum(stats[name] for stats in engine_stats)
            for name in ("queries", "batches", "paths")
        }
        for stage in ("build_s", "pack_s", "forward_s", "decode_s", "total_s"):
            aggregate[stage] = sum(stats[stage] for stats in engine_stats)
        aggregate["per_worker_queries"] = [s["queries"] for s in engine_stats]
        aggregate["input_cache"] = {
            name: sum(stats["cache"][name] for stats in engine_stats)
            for name in ("hits", "misses", "evictions", "entries")
        }
        return {
            "workers": self.config.workers,
            "accepted": counters["accepted"],
            "served": counters["served"],
            "expired": counters["expired"],
            "errors": counters["errors"],
            "rejected": {
                "queue_full": counters["rejected_queue_full"],
                "shutdown": counters["rejected_shutdown"],
            },
            "queue_high_water": counters["queue_high_water"],
            "engine": aggregate,
            "prediction_cache": (
                self.prediction_cache.stats()
                if self.prediction_cache is not None
                else None
            ),
        }
