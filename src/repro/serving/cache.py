"""Content-addressed cache for built model inputs.

The trainer historically memoized inputs by ``id(sample)``.  That is unsound:
once a sample is garbage-collected, CPython freely reuses its ``id`` for a new
object, and the cache would silently serve the *old* sample's tensors for the
new one.  :class:`InputCache` instead keys entries by a SHA-256 digest of the
sample's canonical JSON serialization plus every build parameter that shapes
the resulting arrays (scaler, load feature, QoS-class width, ...), so equal
content always hits and different content never collides.

A per-object memo (guarded by a weak reference, so an ``id`` can never be
observed after its object dies) avoids re-hashing the same live sample on
every epoch.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from typing import Any, Callable

from ..dataset import Sample
from ..dataset.io import sample_to_dict

__all__ = ["InputCache"]


class InputCache:
    """Bounded LRU mapping of content keys to prepared model inputs."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # id -> (weakref to the hashed sample, content digest).  The weakref
        # guarantees a dead object's id can never alias a memoized digest.
        self._digest_memo: dict[int, tuple[weakref.ref, str]] = {}

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def _content_digest(self, sample: Sample) -> str:
        memo = self._digest_memo.get(id(sample))
        if memo is not None and memo[0]() is sample:
            return memo[1]
        payload = json.dumps(
            sample_to_dict(sample), sort_keys=True, default=str
        ).encode()
        digest = hashlib.sha256(payload).hexdigest()
        try:
            self._digest_memo[id(sample)] = (weakref.ref(sample), digest)
        except TypeError:
            pass  # un-weakref-able sample stand-ins (tests) just re-hash
        return digest

    def sample_key(self, sample: Sample, **params: Any) -> str:
        """Cache key for ``sample`` built under keyword build parameters.

        Any JSON-serializable parameter may be passed; objects exposing
        ``to_dict()`` (e.g. :class:`~repro.core.FeatureScaler`) are expanded
        through it so that refitting a scaler changes the key.
        """
        expanded = {
            name: value.to_dict() if hasattr(value, "to_dict") else value
            for name, value in params.items()
        }
        blob = json.dumps(expanded, sort_keys=True, default=str)
        return f"{self._content_digest(sample)}:{hashlib.sha256(blob.encode()).hexdigest()}"

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value)
        return value

    def clear(self) -> None:
        self._entries.clear()
        self._digest_memo.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._entries),
        }
