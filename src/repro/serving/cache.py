"""Content-addressed caches: built model inputs and finished predictions.

The trainer historically memoized inputs by ``id(sample)``.  That is unsound:
once a sample is garbage-collected, CPython freely reuses its ``id`` for a new
object, and the cache would silently serve the *old* sample's tensors for the
new one.  :class:`InputCache` instead keys entries by a SHA-256 digest of the
sample's canonical JSON serialization plus every build parameter that shapes
the resulting arrays (scaler, load feature, QoS-class width, ...), so equal
content always hits and different content never collides.

A per-object memo (guarded by a weak reference, so an ``id`` can never be
observed after its object dies) avoids re-hashing the same live sample on
every epoch.

:class:`PredictionCache` is the tier *above* that: the same content-addressed
keys, but mapping to finished :class:`~repro.results.PredictResult` objects,
so a repeated query skips the forward pass entirely — the engine consults it
before building inputs, and the request-queue service shares one across its
worker shards (hence the lock).  Both caches follow the gradient pool's
ownership discipline (``repro/nn/tensor.py``): bounded, LRU-evicted, with
hit/miss/eviction counters surfaced through the engine's stats.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from typing import Any, Callable

from .. import tsan
from ..dataset import Sample
from ..dataset.io import sample_to_dict

__all__ = ["InputCache", "PredictionCache"]


class InputCache:
    """Bounded LRU mapping of content keys to prepared model inputs.

    **Not** thread-safe by design: each service shard owns exactly one
    instance, so every access happens on that shard's worker thread.  The
    discipline is *proved*, not assumed — statically by the RP502
    single-writer rule (one thread root reaches the writes) and
    dynamically by the ``tsan.note_access`` hooks below, which flag any
    second thread that ever touches ``_entries`` under ``REPRO_TSAN=1``.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # id -> (weakref to the hashed sample, content digest).  The weakref
        # guarantees a dead object's id can never alias a memoized digest.
        self._digest_memo: dict[int, tuple[weakref.ref, str]] = {}

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def _content_digest(self, sample: Sample) -> str:
        memo = self._digest_memo.get(id(sample))
        if memo is not None and memo[0]() is sample:
            return memo[1]
        payload = json.dumps(
            sample_to_dict(sample), sort_keys=True, default=str
        ).encode()
        digest = hashlib.sha256(payload).hexdigest()
        try:
            self._digest_memo[id(sample)] = (weakref.ref(sample), digest)
        except TypeError:
            pass  # un-weakref-able sample stand-ins (tests) just re-hash
        return digest

    @staticmethod
    def params_digest(**params: Any) -> str:
        """Digest of the build parameters alone (the key's second half).

        Build parameters are fixed for the lifetime of an engine or service,
        so hot submit paths hash them once and key each request as
        ``f"{content_digest}:{params_digest}"`` without re-serializing the
        scaler per request.
        """
        expanded = {
            name: value.to_dict() if hasattr(value, "to_dict") else value
            for name, value in params.items()
        }
        blob = json.dumps(expanded, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def content_key(self, sample: Sample, params_digest: str) -> str:
        """Key for ``sample`` under a precomputed :meth:`params_digest`."""
        return f"{self._content_digest(sample)}:{params_digest}"

    def sample_key(self, sample: Sample, **params: Any) -> str:
        """Cache key for ``sample`` built under keyword build parameters.

        Any JSON-serializable parameter may be passed; objects exposing
        ``to_dict()`` (e.g. :class:`~repro.core.FeatureScaler`) are expanded
        through it so that refitting a scaler changes the key.
        """
        return self.content_key(sample, self.params_digest(**params))

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        tsan.note_access(self, "_entries", "write")  # LRU reorder mutates
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: str, value: Any) -> None:
        tsan.note_access(self, "_entries", "write")
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building and storing on miss."""
        value = self.get(key)
        if value is None:
            value = builder()
            self.put(key, value)
        return value

    def clear(self) -> None:
        tsan.note_access(self, "_entries", "write")
        self._entries.clear()
        self._digest_memo.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._entries),
        }


class PredictionCache:
    """Thread-safe LRU of finished predictions, keyed by input content hashes.

    The tier above :class:`InputCache`: where the input cache saves the
    *build* of a repeated query, this saves its *forward pass*.  Keys are the
    same content-addressed strings (``InputCache.sample_key`` /
    ``content_key``), so two samples with equal content — regardless of
    object identity — share one stored :class:`~repro.results.PredictResult`.

    All operations hold one lock: entries are whole immutable results, so
    critical sections are a dict lookup plus an ``OrderedDict`` move, and the
    service's worker shards can share a single instance without a lock
    hierarchy.  Stored results are returned as-is (frozen dataclasses over
    read-only usage); callers must not mutate the arrays.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = tsan.make_lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Any | None:
        with self._lock:
            tsan.note_access(self, "_entries", "write")  # LRU reorder mutates
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            tsan.note_access(self, "_entries", "write")
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            tsan.note_access(self, "_entries", "write")
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
            }
