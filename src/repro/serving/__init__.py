"""Batched inference serving layer.

Packs heterogeneous (topology, routing, traffic) queries into fused RouteNet
inputs so one forward pass serves many queries, with a content-addressed
input cache and per-stage timing counters.  See
:class:`~repro.serving.engine.InferenceEngine` for the entry point.
"""

from .batching import FusedBatch, pack_inputs
from .cache import InputCache
from .engine import InferenceEngine
from .fastpath import fast_forward, supports_fast_forward

__all__ = [
    "FusedBatch",
    "pack_inputs",
    "InputCache",
    "InferenceEngine",
    "fast_forward",
    "supports_fast_forward",
]
