"""Batched inference serving layer.

Packs heterogeneous (topology, routing, traffic) queries into fused RouteNet
inputs so one forward pass serves many queries, with tiered content-addressed
caches (built inputs + finished predictions), per-stage timing counters, a
threaded request-queue service with deadline-aware dynamic batch coalescing
and admission control, and an open-loop Poisson load harness.  Entry points:
:class:`~repro.serving.engine.InferenceEngine` for call-driven batching,
:class:`~repro.serving.service.ServingService` for online serving; both are
configured through a typed :class:`~repro.serving.config.ServeConfig`.
"""

from .batching import FusedBatch, pack_inputs
from .cache import InputCache, PredictionCache
from .config import ServeConfig
from .engine import InferenceEngine
from .fastpath import fast_forward, supports_fast_forward
from .loadgen import LoadReport, predictions_digest, run_closed_loop, run_open_loop
from .service import ServeFuture, ServingService, TopologySignature

__all__ = [
    "FusedBatch",
    "pack_inputs",
    "InputCache",
    "PredictionCache",
    "ServeConfig",
    "InferenceEngine",
    "fast_forward",
    "supports_fast_forward",
    "LoadReport",
    "predictions_digest",
    "run_closed_loop",
    "run_open_loop",
    "ServeFuture",
    "ServingService",
    "TopologySignature",
]
