"""Open-loop load harness for :class:`~repro.serving.ServingService`.

An *open-loop* generator draws request arrival times from a Poisson process
ahead of time and submits on that schedule no matter how the service is
doing; a closed-loop one (submit, wait, submit) would slow its own offered
load down exactly when the service struggles — the classic coordinated
omission trap, which hides tail latency.  Latency is therefore measured from
each request's *scheduled* arrival to its completion: if the generator or
the queue falls behind, the lateness shows up in p99 instead of vanishing.

Arrival schedules and sample choices are seeded through
:func:`repro.random.make_rng`, so a (seed, rate, n) triple names one exact
request sequence — the property the serving benchmark's reproducibility
check builds on.  :func:`run_closed_loop` is the saturation counterpart:
enqueue everything, drain, and measure pure service throughput.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dataset import Sample
from ..errors import AdmissionError, DeadlineExceededError
from ..random import make_rng
from ..results import PredictResult
from .service import ServeFuture, ServingService

__all__ = ["LoadReport", "run_open_loop", "run_closed_loop", "predictions_digest"]


def predictions_digest(results: Sequence[PredictResult]) -> str:
    """SHA-256 over the raw prediction bytes, in request order.

    Bitwise-sensitive: two runs agree on this digest only if every float of
    every prediction is identical.
    """
    hasher = hashlib.sha256()
    for result in results:
        hasher.update(np.ascontiguousarray(result.delay).tobytes())
        if result.jitter is not None:
            hasher.update(np.ascontiguousarray(result.jitter).tobytes())
    return hasher.hexdigest()


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run.

    Attributes:
        offered_rps: Target arrival rate (``0`` for closed-loop runs).
        achieved_rps: Completed requests over the span from first scheduled
            arrival to last completion.
        requests / completed / rejected / expired / errors: Request fates;
            ``rejected`` counts admission-control refusals at submit,
            ``expired`` deadline failures, ``errors`` anything else.
        p50_ms / p90_ms / p99_ms / mean_ms: Scheduled-arrival-to-completion
            latency percentiles over completed requests (NaN when none).
        duration_s: First scheduled arrival to last completion.
    """

    offered_rps: float
    achieved_rps: float
    requests: int
    completed: int
    rejected: int
    expired: int
    errors: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    mean_ms: float
    duration_s: float

    def to_dict(self) -> dict:
        return {
            "offered_rps": round(self.offered_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "errors": self.errors,
            "p50_ms": round(self.p50_ms, 3),
            "p90_ms": round(self.p90_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "duration_s": round(self.duration_s, 4),
        }


def _summarize(
    offered_rps: float,
    latencies_ms: list[float],
    *,
    requests: int,
    rejected: int,
    expired: int,
    errors: int,
    duration_s: float,
) -> LoadReport:
    if latencies_ms:
        arr = np.asarray(latencies_ms)
        p50, p90, p99 = (float(np.percentile(arr, q)) for q in (50, 90, 99))
        mean = float(arr.mean())
    else:
        p50 = p90 = p99 = mean = float("nan")
    completed = len(latencies_ms)
    return LoadReport(
        offered_rps=offered_rps,
        achieved_rps=completed / duration_s if duration_s > 0 else 0.0,
        requests=requests,
        completed=completed,
        rejected=rejected,
        expired=expired,
        errors=errors,
        p50_ms=p50,
        p90_ms=p90,
        p99_ms=p99,
        mean_ms=mean,
        duration_s=duration_s,
    )


def _drain_outcomes(
    submitted: list[tuple[float, ServeFuture]], timeout_s: float
) -> tuple[list[float], int, int, float]:
    """Wait for every future; (latencies_ms, expired, errors, last_done)."""
    latencies_ms: list[float] = []
    expired = 0
    errors = 0
    last_done = 0.0
    for scheduled, future in submitted:
        error = future.exception(timeout=timeout_s)
        assert future.completed_at is not None
        last_done = max(last_done, future.completed_at)
        if error is None:
            latencies_ms.append((future.completed_at - scheduled) * 1000.0)
        elif isinstance(error, DeadlineExceededError):
            expired += 1
        else:
            errors += 1
    return latencies_ms, expired, errors, last_done


def run_open_loop(
    service: ServingService,
    samples: Sequence[Sample],
    *,
    rate_rps: float,
    num_requests: int,
    seed: int = 0,
    deadline_ms: float | None = None,
    timeout_s: float = 120.0,
) -> LoadReport:
    """Offer ``num_requests`` Poisson arrivals at ``rate_rps`` and report.

    Each request is a uniformly drawn member of ``samples``.  Rejected
    submissions (admission control) are counted and *not* retried — shed
    load is the open-loop contract.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    rng = make_rng(seed)
    choices = rng.integers(0, len(samples), size=num_requests)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_rps, size=num_requests))

    start = time.perf_counter()
    submitted: list[tuple[float, ServeFuture]] = []
    rejected = 0
    for index, offset in zip(choices, arrivals):
        scheduled = start + float(offset)
        delay = scheduled - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            future = service.submit(samples[int(index)], deadline_ms=deadline_ms)
        except AdmissionError:
            rejected += 1
            continue
        submitted.append((scheduled, future))

    latencies_ms, expired, errors, last_done = _drain_outcomes(submitted, timeout_s)
    duration = max(last_done, time.perf_counter()) - (start + float(arrivals[0]))
    return _summarize(
        rate_rps,
        latencies_ms,
        requests=num_requests,
        rejected=rejected,
        expired=expired,
        errors=errors,
        duration_s=duration,
    )


def run_closed_loop(
    service: ServingService,
    samples: Sequence[Sample],
    *,
    num_requests: int,
    seed: int = 0,
    timeout_s: float = 120.0,
) -> tuple[LoadReport, list[PredictResult]]:
    """Saturation probe: enqueue ``num_requests`` back-to-back, then drain.

    The service must be configured with ``queue_depth >= num_requests`` (a
    rejection here is a harness misconfiguration and raises).  Returns the
    report plus the predictions in submit order, so callers can digest them
    (:func:`predictions_digest`) for reproducibility checks.

    The service is closed (with a full drain) by this call: that is what
    flushes the final partial batch under ``coalesce="count"``, where no
    timer ever fires.  Use a fresh service per run.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    rng = make_rng(seed)
    choices = rng.integers(0, len(samples), size=num_requests)
    start = time.perf_counter()
    submitted = [
        (start, service.submit(samples[int(index)])) for index in choices
    ]
    service.close(drain=True)
    latencies_ms, expired, errors, last_done = _drain_outcomes(submitted, timeout_s)
    duration = last_done - start
    report = _summarize(
        0.0,
        latencies_ms,
        requests=num_requests,
        rejected=0,
        expired=expired,
        errors=errors,
        duration_s=duration,
    )
    results = [future.result(0) for _, future in submitted if future.exception(0) is None]
    return report, results
