"""Typed serving configuration shared by the engine, the service and the CLI.

:class:`InferenceEngine` historically grew one loose constructor kwarg per
feature (``batch_size``, ``include_load``, ``use_fast_path``, ...), and the
request-queue service would have tripled that surface.  :class:`ServeConfig`
is the single typed knob object instead: one frozen dataclass validated at
construction, threaded through :class:`~repro.serving.InferenceEngine`,
:class:`~repro.serving.ServingService`, :func:`repro.api.predict` and the
``repro serve-bench`` CLI subcommand.  The old engine kwargs keep working
through a once-per-process deprecation shim (see ``InferenceEngine``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ServingError

__all__ = ["ServeConfig"]

#: Coalescing policies for :class:`~repro.serving.ServingService` workers.
#: ``"deadline"`` cuts a batch at ``max_batch`` requests, at ``max_wait_ms``
#: after the batch opened, or just before the earliest collected deadline —
#: whichever comes first.  ``"count"`` cuts only at ``max_batch`` (or drain),
#: which makes batch composition — and therefore the served float arithmetic —
#: a pure function of the submit order: the bench's bitwise-reproducibility
#: mode.
_COALESCE_MODES = ("deadline", "count")


@dataclass(frozen=True)
class ServeConfig:
    """Validated serving knobs for the engine and the request-queue service.

    Attributes:
        max_batch: Maximum queries fused into one forward call.
        max_wait_ms: Service coalescing window: a worker serves an open batch
            at most this many milliseconds after its first request arrived.
            ``0`` serves every request immediately (no coalescing).
        deadline_ms: Default per-request deadline (from submission) after
            which a still-queued request is failed with
            :class:`~repro.errors.DeadlineExceededError` instead of served.
            ``None`` (default) means requests never expire.
        queue_depth: Total queued-request bound across workers; submissions
            beyond it are rejected with reason ``"queue_full"``.
        workers: Service worker shards.  Requests are routed by
            :class:`~repro.serving.TopologySignature` so one topology's
            built inputs and index plans stay hot in a single worker's caches.
        input_cache_size: Per-engine :class:`~repro.serving.InputCache`
            capacity (built ``ModelInput`` tier).
        prediction_cache_size: :class:`~repro.serving.PredictionCache`
            capacity (finished ``PredictResult`` tier); ``0`` disables the
            tier entirely.
        coalesce: Batch-cut policy, ``"deadline"`` (default) or ``"count"``
            (deterministic composition; see module notes).
        include_load: Build inputs with the per-link load feature (must match
            the model's ``link_feature_dim``).
        use_fast_path: Serve through the raw-numpy inference kernel when the
            model supports it.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    deadline_ms: float | None = None
    queue_depth: int = 256
    workers: int = 1
    input_cache_size: int = 1024
    prediction_cache_size: int = 2048
    coalesce: str = "deadline"
    include_load: bool = False
    use_fast_path: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ServingError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ServingError(
                f"deadline_ms must be positive (or None), got {self.deadline_ms}"
            )
        if self.queue_depth < 1:
            raise ServingError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.workers < 1:
            raise ServingError(f"workers must be >= 1, got {self.workers}")
        if self.input_cache_size < 1:
            raise ServingError(
                f"input_cache_size must be >= 1, got {self.input_cache_size}"
            )
        if self.prediction_cache_size < 0:
            raise ServingError(
                f"prediction_cache_size must be >= 0 (0 disables the tier), "
                f"got {self.prediction_cache_size}"
            )
        if self.coalesce not in _COALESCE_MODES:
            raise ServingError(
                f"coalesce must be one of {_COALESCE_MODES}, got {self.coalesce!r}"
            )

    def replace(self, **changes) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (used in benchmark reports and stats)."""
        return dataclasses.asdict(self)
