"""Fused batching: pack heterogeneous samples into one RouteNet input.

RouteNet's forward pass is shape-polymorphic — it only consumes the dense
arrays of a :class:`~repro.core.features.ModelInput` — so N samples with
*different* topologies, routings and traffic matrices can be served by a
single forward call once their arrays are fused:

* ``link_features`` / ``path_features`` — row-concatenated, so sample *i*
  occupies rows ``[link_offsets[i], link_offsets[i+1])`` of the fused link
  state and ``[path_offsets[i], path_offsets[i+1])`` of the fused path state;
* ``link_indices`` — each sample's indices are shifted by its link offset and
  right-padded with ``-1`` up to the batch-wide maximum path length;
* ``mask`` — recomputed as ``link_indices >= 0``.

Correctness relies on two properties of the forward pass: samples occupy
disjoint slices of the fused link index space, so ``segment_sum`` never mixes
messages across samples; and padded (``-1``) positions are masked out of the
path GRU and dropped by ``segment_sum``, so the extra padding introduced by
fusing adds exactly zero to every aggregation.  Fused predictions therefore
match per-sample predictions to floating-point accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core import FeatureScaler, ModelInput, build_model_input
from ..errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids an import cycle
    from ..dataset.sample import Sample

__all__ = [
    "FusedBatch",
    "fuse_training_batch",
    "pack_inputs",
    "prepare_training_input",
]


@dataclass(frozen=True)
class FusedBatch:
    """One packed batch plus the offsets needed to unpack per-sample rows.

    Attributes:
        inputs: The fused :class:`ModelInput` (feed it to ``model.forward``).
        path_offsets: Cumulative path-row boundaries, length ``N + 1``.
        link_offsets: Cumulative link-row boundaries, length ``N + 1``.
    """

    inputs: ModelInput
    path_offsets: tuple[int, ...]
    link_offsets: tuple[int, ...]

    @property
    def num_samples(self) -> int:
        return len(self.path_offsets) - 1

    def __len__(self) -> int:
        return self.num_samples

    def split_rows(self, rows: np.ndarray) -> list[np.ndarray]:
        """Slice per-path rows (model output) back into per-sample arrays."""
        if rows.shape[0] != self.path_offsets[-1]:
            raise ServingError(
                f"expected {self.path_offsets[-1]} fused path rows, "
                f"got {rows.shape[0]}"
            )
        return [
            rows[start:stop]
            for start, stop in zip(self.path_offsets[:-1], self.path_offsets[1:])
        ]


def pack_inputs(inputs: Sequence[ModelInput]) -> FusedBatch:
    """Fuse per-sample model inputs into one batched :class:`ModelInput`.

    Args:
        inputs: One or more inputs, possibly from different topologies.  All
            must share the same link/path feature widths (i.e. be built for
            the same model configuration).

    Raises:
        ServingError: On an empty sequence or mismatched feature widths.
    """
    if not inputs:
        raise ServingError("cannot pack an empty batch")
    link_dims = {inp.link_features.shape[1] for inp in inputs}
    path_dims = {inp.path_features.shape[1] for inp in inputs}
    if len(link_dims) > 1 or len(path_dims) > 1:
        raise ServingError(
            f"inputs disagree on feature widths (link {sorted(link_dims)}, "
            f"path {sorted(path_dims)}); all batch members must target the "
            f"same model configuration"
        )

    path_offsets = np.cumsum([0] + [inp.num_paths for inp in inputs])
    link_offsets = np.cumsum([0] + [inp.num_links for inp in inputs])
    max_len = max(inp.max_path_length for inp in inputs)
    total_paths = int(path_offsets[-1])

    fused_indices = np.full((total_paths, max_len), -1, dtype=np.intp)
    for inp, start, shift in zip(inputs, path_offsets[:-1], link_offsets[:-1]):
        idx = inp.link_indices
        block = fused_indices[start : start + idx.shape[0], : idx.shape[1]]
        np.copyto(block, idx + shift, where=idx >= 0)

    fused = ModelInput(
        pairs=tuple(pair for inp in inputs for pair in inp.pairs),
        link_features=np.concatenate([inp.link_features for inp in inputs]),
        path_features=np.concatenate([inp.path_features for inp in inputs]),
        link_indices=fused_indices,
        mask=fused_indices >= 0,
    )
    return FusedBatch(
        inputs=fused,
        path_offsets=tuple(int(x) for x in path_offsets),
        link_offsets=tuple(int(x) for x in link_offsets),
    )


def prepare_training_input(
    sample: "Sample",
    *,
    scaler: FeatureScaler,
    include_load: bool,
    path_feature_dim: int,
    readout_targets: int,
) -> tuple[ModelInput, np.ndarray]:
    """Model input + encoded targets for one sample under a model config.

    This is the single shared implementation behind both the trainer's
    content-cached ``_prepare`` and the streaming prefetch worker
    (:mod:`repro.dataset.stream`) — one code path means the background
    process packs *bitwise* the same arrays the in-process path would.

    Class-aware models (``path_feature_dim > 1`` beyond the traffic column)
    receive the sample's QoS classes as one-hot features; single-target
    models keep only the delay column of the encoded labels.
    """
    extra = path_feature_dim - 1
    pair_class = sample.pair_class if extra > 0 else None
    inputs = build_model_input(
        sample.topology,
        sample.routing,
        sample.traffic,
        scaler=scaler,
        pairs=list(sample.pairs),
        include_load=include_load,
        pair_class=pair_class,
        num_classes=extra if pair_class is not None else 0,
    )
    targets = scaler.encode_targets(sample.targets())
    if readout_targets == 1:
        targets = targets[:, :1]
    return inputs, targets


def fuse_training_batch(
    prepared: Sequence[tuple[ModelInput, np.ndarray]],
) -> tuple[ModelInput, np.ndarray]:
    """Fuse prepared ``(inputs, targets)`` pairs into one training batch.

    A batch of one passes through unfused — the exact arrays of
    :func:`prepare_training_input` — so ``B=1`` training over this helper is
    bit-identical to the historical single-sample step (no packing, same
    tape shapes).  Larger batches are packed with :func:`pack_inputs` and
    their targets row-concatenated in member order.
    """
    if not prepared:
        raise ServingError("cannot fuse an empty batch")
    if len(prepared) == 1:
        return prepared[0]
    fused = pack_inputs([inputs for inputs, _ in prepared])
    targets = np.concatenate([t for _, t in prepared])
    return fused.inputs, targets
