"""Batched inference engine: many (topology, routing, traffic) queries, one
forward pass.

The paper's whole value proposition is cheap what-if evaluation, but a Python
loop over ``model.predict`` pays interpreter and small-array overhead per
sample.  :class:`InferenceEngine` fuses N heterogeneous queries into one
:class:`~repro.serving.batching.FusedBatch` so a single ``RouteNet.forward``
serves them all, then unpacks per-sample :class:`~repro.results.PredictResult`
objects.  Per-stage wall-clock (build / pack / forward / decode) is counted
and exposed via :meth:`InferenceEngine.stats` so serving regressions are
observable.

Caching is tiered.  Tier 1 is a :class:`~repro.serving.PredictionCache`:
repeated queries (same sample content, same build parameters) return the
stored :class:`PredictResult` without building inputs or running the model.
Tier 2 is the :class:`~repro.serving.InputCache` of built ``ModelInput``
arrays: a prediction-cache miss still reuses the prepared arrays when only
the *forward* is stale.  Both tiers' hit/miss/eviction counters ride along in
:meth:`stats`.

Configuration is a typed :class:`~repro.serving.ServeConfig`; the historical
loose kwargs (``batch_size=``, ``include_load=``, ``use_fast_path=``) keep
working through a deprecation shim that warns once per process.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Sequence

from .. import nn
from ..core import FeatureScaler, ModelInput, RouteNet, build_model_input
from ..dataset import Sample
from ..errors import ReproDeprecationWarning, ServingError
from ..results import PredictResult
from .batching import pack_inputs
from .cache import InputCache, PredictionCache
from .config import ServeConfig
from .fastpath import fast_forward, supports_fast_forward

__all__ = ["InferenceEngine"]

_STAGES = ("build", "pack", "forward", "decode")

#: Legacy constructor kwargs and the ServeConfig field each one maps to.
_LEGACY_KWARGS = {
    "batch_size": "max_batch",
    "include_load": "include_load",
    "use_fast_path": "use_fast_path",
}

_warned_legacy_kwargs = False


def _config_from_legacy(legacy: dict) -> ServeConfig:
    """Map deprecated loose kwargs onto a :class:`ServeConfig`, warning once."""
    unknown = set(legacy) - set(_LEGACY_KWARGS)
    if unknown:
        raise TypeError(
            f"InferenceEngine got unexpected keyword arguments {sorted(unknown)}"
        )
    global _warned_legacy_kwargs
    if not _warned_legacy_kwargs:
        _warned_legacy_kwargs = True
        warnings.warn(
            f"InferenceEngine kwargs {sorted(legacy)} are deprecated; pass "
            f"config=ServeConfig(...) instead (this warning is emitted once)",
            ReproDeprecationWarning,
            stacklevel=3,
        )
    return ServeConfig(**{_LEGACY_KWARGS[name]: value for name, value in legacy.items()})


class InferenceEngine:
    """Serves RouteNet predictions over fused batches of heterogeneous samples.

    Args:
        model: A trained :class:`RouteNet`.
        scaler: The feature scaler the model was trained with.  Treated as
            frozen: cache keys bake in its state at first use, so refitting
            means building a new engine (the trainer already does).
        config: Typed serving knobs (:class:`ServeConfig`); library defaults
            when omitted.  The engine consumes ``max_batch``,
            ``include_load``, ``use_fast_path``, ``input_cache_size`` and
            ``prediction_cache_size``; queue/worker fields belong to
            :class:`~repro.serving.ServingService`.
        cache: Content-addressed store for built inputs; created from
            ``config.input_cache_size`` when omitted.
        prediction_cache: Finished-result tier; created from
            ``config.prediction_cache_size`` when omitted (``0`` disables).
            Pass a shared instance to pool results across engines (the
            service shards do).
        builder: Optional override mapping a :class:`Sample` to a
            :class:`ModelInput` (e.g. the trainer's prepared/cached inputs).
            When given, it owns input caching and ``cache`` is bypassed for
            sample builds (content keys are still used for the prediction
            tier).
        **legacy: Deprecated loose kwargs (``batch_size``, ``include_load``,
            ``use_fast_path``); mutually exclusive with ``config``.
    """

    def __init__(
        self,
        model: RouteNet,
        scaler: FeatureScaler,
        config: ServeConfig | None = None,
        *,
        cache: InputCache | None = None,
        prediction_cache: PredictionCache | None = None,
        builder: Callable[[Sample], ModelInput] | None = None,
        **legacy,
    ) -> None:
        if legacy:
            if config is not None:
                raise ServingError(
                    f"pass either config=ServeConfig(...) or the deprecated "
                    f"loose kwargs {sorted(legacy)}, not both"
                )
            config = _config_from_legacy(legacy)
        self.config = config or ServeConfig()
        self.model = model
        self.scaler = scaler
        self.include_load = self.config.include_load
        self.batch_size = self.config.max_batch
        self.cache = cache or InputCache(capacity=self.config.input_cache_size)
        if prediction_cache is None and self.config.prediction_cache_size > 0:
            prediction_cache = PredictionCache(self.config.prediction_cache_size)
        self.prediction_cache = prediction_cache
        self._builder = builder
        self._queue: list[Sample] = []
        self._params_digest: str | None = None
        self.fast_path = self.config.use_fast_path and supports_fast_forward(model)
        self.reset_stats()

    # ------------------------------------------------------------------
    # Input building
    # ------------------------------------------------------------------
    def _build_uncached(self, sample: Sample) -> ModelInput:
        # Class-aware models (path_feature_dim > 1 beyond the traffic column)
        # receive the sample's QoS classes as one-hot features.
        extra = self.model.hparams.path_feature_dim - 1
        pair_class = sample.pair_class if extra > 0 else None
        return build_model_input(
            sample.topology,
            sample.routing,
            sample.traffic,
            scaler=self.scaler,
            pairs=list(sample.pairs),
            include_load=self.include_load,
            pair_class=pair_class,
            num_classes=extra if pair_class is not None else 0,
        )

    def sample_key(self, sample: Sample) -> str:
        """Content-addressed key of ``sample`` under this engine's build
        parameters (the key both cache tiers share)."""
        if self._params_digest is None:
            self._params_digest = InputCache.params_digest(
                scaler=self.scaler,
                include_load=self.include_load,
                path_feature_dim=self.model.hparams.path_feature_dim,
            )
        return self.cache.content_key(sample, self._params_digest)

    def build_input(self, sample: Sample) -> ModelInput:
        """The (cached) model input for one sample."""
        if self._builder is not None:
            return self._builder(sample)
        return self.cache.get_or_build(
            self.sample_key(sample), lambda: self._build_uncached(sample)
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def submit(self, sample: Sample) -> int:
        """Queue one query for the next :meth:`flush`; returns its position."""
        self._queue.append(sample)
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        return len(self._queue)

    def flush(self) -> list[PredictResult]:
        """Serve all queued queries in fused batches (order preserved)."""
        queued, self._queue = self._queue, []
        return self.predict_many(queued) if queued else []

    def predict_many(
        self, samples: Sequence[Sample], batch_size: int | None = None
    ) -> list[PredictResult]:
        """Batched predictions for many samples, aligned with the input order.

        With the prediction tier enabled, content-identical samples — across
        calls *and* within one call — are served from the cache / computed
        once; only distinct misses reach the model.
        """
        if not samples:
            raise ServingError("predict_many needs at least one sample")
        self._counts["queries"] += len(samples)
        if self.prediction_cache is None:
            started = time.perf_counter()
            inputs = [self.build_input(sample) for sample in samples]
            self._times["build"] += time.perf_counter() - started
            return self._serve(inputs, batch_size)

        results: list[PredictResult | None] = [None] * len(samples)
        pending: dict[str, list[int]] = {}
        for i, sample in enumerate(samples):
            key = self.sample_key(sample)
            cached = self.prediction_cache.get(key)
            if cached is not None:
                results[i] = cached
            else:
                pending.setdefault(key, []).append(i)
        if pending:
            started = time.perf_counter()
            inputs = [
                self.build_input(samples[indices[0]]) for indices in pending.values()
            ]
            self._times["build"] += time.perf_counter() - started
            for (key, indices), result in zip(
                pending.items(), self._serve(inputs, batch_size)
            ):
                self.prediction_cache.put(key, result)
                for i in indices:
                    results[i] = result
        return results  # type: ignore[return-value]  # every slot is filled

    def predict_inputs(
        self, inputs: Sequence[ModelInput], batch_size: int | None = None
    ) -> list[PredictResult]:
        """Batched predictions for pre-built model inputs.

        Pre-built inputs carry no content key, so this path bypasses the
        prediction tier.
        """
        if not inputs:
            raise ServingError("predict_inputs needs at least one input")
        self._counts["queries"] += len(inputs)
        return self._serve(list(inputs), batch_size)

    def _serve(
        self, inputs: list[ModelInput], batch_size: int | None
    ) -> list[PredictResult]:
        size = batch_size or self.batch_size
        if size < 1:
            raise ServingError(f"batch_size must be >= 1, got {size}")
        results: list[PredictResult] = []
        for start in range(0, len(inputs), size):
            chunk = inputs[start : start + size]

            t0 = time.perf_counter()
            batch = pack_inputs(chunk)
            t1 = time.perf_counter()
            if self.fast_path:
                encoded = fast_forward(self.model, batch.inputs)
            else:
                with nn.no_grad():
                    encoded = self.model.forward(batch.inputs, training=False).numpy()
            t2 = time.perf_counter()
            decoded = self.scaler.decode_targets(encoded)
            for inp, rows in zip(chunk, batch.split_rows(decoded)):
                results.append(
                    PredictResult(
                        pairs=inp.pairs,
                        delay=rows[:, 0],
                        jitter=rows[:, 1] if rows.shape[1] > 1 else None,
                    )
                )
            t3 = time.perf_counter()

            self._times["pack"] += t1 - t0
            self._times["forward"] += t2 - t1
            self._times["decode"] += t3 - t2
            self._counts["batches"] += 1
            self._counts["paths"] += int(batch.path_offsets[-1])
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative serving counters since the last :meth:`reset_stats`.

        Returns:
            ``{"queries", "batches", "paths"}`` counts (``queries`` counts
            every request including cache-served ones; ``batches`` / ``paths``
            only what reached the model), per-stage seconds (``build_s`` /
            ``pack_s`` / ``forward_s`` / ``decode_s`` and their ``total_s``
            sum), the input-cache counters under ``"cache"``, and the
            prediction-tier counters under ``"prediction_cache"`` (``None``
            when the tier is disabled).  Cache counters are cache-lifetime,
            not reset by :meth:`reset_stats`.
        """
        out: dict = dict(self._counts)
        total = 0.0
        for stage in _STAGES:
            out[f"{stage}_s"] = self._times[stage]
            total += self._times[stage]
        out["total_s"] = total
        out["fast_path"] = self.fast_path
        out["cache"] = self.cache.stats()
        out["prediction_cache"] = (
            self.prediction_cache.stats() if self.prediction_cache is not None else None
        )
        return out

    def reset_stats(self) -> None:
        self._times = {stage: 0.0 for stage in _STAGES}
        self._counts = {"queries": 0, "batches": 0, "paths": 0}

    @staticmethod
    def format_stats(stats: dict) -> str:
        """Human-readable one-block rendering of a :meth:`stats` dict."""
        lines = [
            f"queries {stats['queries']}   batches {stats['batches']}   "
            f"paths {stats['paths']}"
        ]
        for stage in _STAGES:
            seconds = stats[f"{stage}_s"]
            share = seconds / stats["total_s"] if stats["total_s"] > 0 else 0.0
            lines.append(f"  {stage:<8s} {seconds * 1000:8.1f} ms  ({share:5.1%})")
        for label, name in (("cache", "cache"), ("preds", "prediction_cache")):
            tier = stats.get(name)
            if tier:
                lines.append(
                    f"  {label:<8s} {tier['hits']} hits / {tier['misses']} misses"
                    f" / {tier['entries']} entries"
                )
        return "\n".join(lines)
