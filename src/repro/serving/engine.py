"""Batched inference engine: many (topology, routing, traffic) queries, one
forward pass.

The paper's whole value proposition is cheap what-if evaluation, but a Python
loop over ``model.predict`` pays interpreter and small-array overhead per
sample.  :class:`InferenceEngine` fuses N heterogeneous queries into one
:class:`~repro.serving.batching.FusedBatch` so a single ``RouteNet.forward``
serves them all, then unpacks per-sample :class:`~repro.results.PredictResult`
objects.  Per-stage wall-clock (build / pack / forward / decode) is counted
and exposed via :meth:`InferenceEngine.stats` so serving regressions are
observable.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from .. import nn
from ..core import FeatureScaler, ModelInput, RouteNet, build_model_input
from ..dataset import Sample
from ..errors import ServingError
from ..results import PredictResult
from .batching import pack_inputs
from .cache import InputCache
from .fastpath import fast_forward, supports_fast_forward

__all__ = ["InferenceEngine"]

_STAGES = ("build", "pack", "forward", "decode")


class InferenceEngine:
    """Serves RouteNet predictions over fused batches of heterogeneous samples.

    Args:
        model: A trained :class:`RouteNet`.
        scaler: The feature scaler the model was trained with.
        include_load: Build inputs with the per-link load feature (must match
            the model's ``link_feature_dim``).
        batch_size: Maximum queries fused into one forward call.
        cache: Content-addressed store for built inputs; created when omitted.
        builder: Optional override mapping a :class:`Sample` to a
            :class:`ModelInput` (e.g. the trainer's prepared/cached inputs).
            When given, it owns caching and ``cache`` is bypassed for samples.
        use_fast_path: Serve through the raw-numpy inference kernel
            (:func:`~repro.serving.fastpath.fast_forward`) instead of the
            autodiff ``model.forward``.  Silently falls back to the autodiff
            path for models the kernel does not support.
    """

    def __init__(
        self,
        model: RouteNet,
        scaler: FeatureScaler,
        *,
        include_load: bool = False,
        batch_size: int = 32,
        cache: InputCache | None = None,
        builder: Callable[[Sample], ModelInput] | None = None,
        use_fast_path: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ServingError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.scaler = scaler
        self.include_load = include_load
        self.batch_size = batch_size
        self.cache = cache or InputCache()
        self._builder = builder
        self._queue: list[Sample] = []
        self.fast_path = use_fast_path and supports_fast_forward(model)
        self.reset_stats()

    # ------------------------------------------------------------------
    # Input building
    # ------------------------------------------------------------------
    def _build_uncached(self, sample: Sample) -> ModelInput:
        # Class-aware models (path_feature_dim > 1 beyond the traffic column)
        # receive the sample's QoS classes as one-hot features.
        extra = self.model.hparams.path_feature_dim - 1
        pair_class = sample.pair_class if extra > 0 else None
        return build_model_input(
            sample.topology,
            sample.routing,
            sample.traffic,
            scaler=self.scaler,
            pairs=list(sample.pairs),
            include_load=self.include_load,
            pair_class=pair_class,
            num_classes=extra if pair_class is not None else 0,
        )

    def build_input(self, sample: Sample) -> ModelInput:
        """The (cached) model input for one sample."""
        if self._builder is not None:
            return self._builder(sample)
        key = self.cache.sample_key(
            sample,
            scaler=self.scaler,
            include_load=self.include_load,
            path_feature_dim=self.model.hparams.path_feature_dim,
        )
        return self.cache.get_or_build(key, lambda: self._build_uncached(sample))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def submit(self, sample: Sample) -> int:
        """Queue one query for the next :meth:`flush`; returns its position."""
        self._queue.append(sample)
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        return len(self._queue)

    def flush(self) -> list[PredictResult]:
        """Serve all queued queries in fused batches (order preserved)."""
        queued, self._queue = self._queue, []
        return self.predict_many(queued) if queued else []

    def predict_many(
        self, samples: Sequence[Sample], batch_size: int | None = None
    ) -> list[PredictResult]:
        """Batched predictions for many samples, aligned with the input order."""
        if not samples:
            raise ServingError("predict_many needs at least one sample")
        started = time.perf_counter()
        inputs = [self.build_input(sample) for sample in samples]
        self._times["build"] += time.perf_counter() - started
        return self._serve(inputs, batch_size)

    def predict_inputs(
        self, inputs: Sequence[ModelInput], batch_size: int | None = None
    ) -> list[PredictResult]:
        """Batched predictions for pre-built model inputs."""
        if not inputs:
            raise ServingError("predict_inputs needs at least one input")
        return self._serve(list(inputs), batch_size)

    def _serve(
        self, inputs: list[ModelInput], batch_size: int | None
    ) -> list[PredictResult]:
        size = batch_size or self.batch_size
        if size < 1:
            raise ServingError(f"batch_size must be >= 1, got {size}")
        results: list[PredictResult] = []
        for start in range(0, len(inputs), size):
            chunk = inputs[start : start + size]

            t0 = time.perf_counter()
            batch = pack_inputs(chunk)
            t1 = time.perf_counter()
            if self.fast_path:
                encoded = fast_forward(self.model, batch.inputs)
            else:
                with nn.no_grad():
                    encoded = self.model.forward(batch.inputs, training=False).numpy()
            t2 = time.perf_counter()
            decoded = self.scaler.decode_targets(encoded)
            for inp, rows in zip(chunk, batch.split_rows(decoded)):
                results.append(
                    PredictResult(
                        pairs=inp.pairs,
                        delay=rows[:, 0],
                        jitter=rows[:, 1] if rows.shape[1] > 1 else None,
                    )
                )
            t3 = time.perf_counter()

            self._times["pack"] += t1 - t0
            self._times["forward"] += t2 - t1
            self._times["decode"] += t3 - t2
            self._counts["batches"] += 1
            self._counts["paths"] += int(batch.path_offsets[-1])
        self._counts["queries"] += len(inputs)
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative serving counters since the last :meth:`reset_stats`.

        Returns:
            ``{"queries", "batches", "paths"}`` counts, per-stage seconds
            (``build_s`` / ``pack_s`` / ``forward_s`` / ``decode_s`` and their
            ``total_s`` sum), and the input-cache counters under ``"cache"``.
        """
        out: dict = dict(self._counts)
        total = 0.0
        for stage in _STAGES:
            out[f"{stage}_s"] = self._times[stage]
            total += self._times[stage]
        out["total_s"] = total
        out["fast_path"] = self.fast_path
        out["cache"] = self.cache.stats()
        return out

    def reset_stats(self) -> None:
        self._times = {stage: 0.0 for stage in _STAGES}
        self._counts = {"queries": 0, "batches": 0, "paths": 0}

    @staticmethod
    def format_stats(stats: dict) -> str:
        """Human-readable one-block rendering of a :meth:`stats` dict."""
        lines = [
            f"queries {stats['queries']}   batches {stats['batches']}   "
            f"paths {stats['paths']}"
        ]
        for stage in _STAGES:
            seconds = stats[f"{stage}_s"]
            share = seconds / stats["total_s"] if stats["total_s"] > 0 else 0.0
            lines.append(f"  {stage:<8s} {seconds * 1000:8.1f} ms  ({share:5.1%})")
        cache = stats.get("cache")
        if cache:
            lines.append(
                f"  cache    {cache['hits']} hits / {cache['misses']} misses"
                f" / {cache['entries']} entries"
            )
        return "\n".join(lines)
