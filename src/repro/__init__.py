"""repro — reproduction of "Challenging the generalization capabilities of
Graph Neural Networks for network modeling" (SIGCOMM 2019 demo).

The library implements the RouteNet GNN (path-link message passing over
runtime-assembled graphs), the packet-level simulator that produces its
ground truth, the routing/traffic/topology substrates, analytic and
fully-connected baselines, and the evaluation harness reproducing the
paper's figures.

Quickstart::

    from repro import topology, dataset, core, training

    topo = topology.nsfnet()
    samples = dataset.generate_dataset(topo, num_samples=32, seed=0)
    train, evaluation = dataset.train_eval_split(samples, 0.2, seed=1)
    model = core.RouteNet(seed=2)
    trainer = training.Trainer(model, seed=3)
    trainer.fit(train, epochs=20)
    print(trainer.evaluate(evaluation)["delay"])
"""

from . import (
    baselines,
    core,
    dataset,
    errors,
    evaluation,
    nn,
    planning,
    queueing,
    routing,
    simulator,
    topology,
    traffic,
    training,
)
from .core import RouteNet, HyperParams, build_model_input, FeatureScaler
from .dataset import generate_dataset, generate_sample, GenerationConfig
from .errors import ReproError
from .random import make_rng, split_rng
from .training import Trainer

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "dataset",
    "errors",
    "evaluation",
    "nn",
    "planning",
    "queueing",
    "routing",
    "simulator",
    "topology",
    "traffic",
    "training",
    "RouteNet",
    "HyperParams",
    "build_model_input",
    "FeatureScaler",
    "generate_dataset",
    "generate_sample",
    "GenerationConfig",
    "ReproError",
    "make_rng",
    "split_rng",
    "Trainer",
    "__version__",
]
