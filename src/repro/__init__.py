"""repro — reproduction of "Challenging the generalization capabilities of
Graph Neural Networks for network modeling" (SIGCOMM 2019 demo).

The library implements the RouteNet GNN (path-link message passing over
runtime-assembled graphs), the packet-level simulator that produces its
ground truth, the routing/traffic/topology substrates, analytic and
fully-connected baselines, and the evaluation harness reproducing the
paper's figures.

Quickstart (the :mod:`repro.api` facade)::

    import repro

    samples = repro.simulate("nsfnet", num_samples=32, seed=0)
    train, evaluation = repro.dataset.train_eval_split(samples, 0.2, seed=1)
    result = repro.train(train, epochs=20, seed=2)
    print(repro.evaluate(result.model, evaluation, scaler=result.scaler).delay)
"""

from . import (
    baselines,
    core,
    dataset,
    errors,
    evaluation,
    nn,
    planning,
    queueing,
    routing,
    runner,
    serving,
    simulator,
    topology,
    traffic,
    training,
)
from .core import RouteNet, HyperParams, build_model_input, FeatureScaler
from .dataset import (
    generate_dataset,
    generate_dataset_run,
    generate_sample,
    GenerationConfig,
    GenerationRun,
)
from .runner import ParallelRunner, RunnerConfig
from .errors import ReproError
from .random import make_rng, split_rng
from .results import EvalResult, Metrics, PredictResult
from .serving import InferenceEngine, ServeConfig, ServingService
from .training import Trainer
from . import api
from .api import TrainResult, evaluate, predict, simulate, train

__version__ = "1.0.0"

__all__ = [
    "api",
    "baselines",
    "core",
    "dataset",
    "errors",
    "evaluation",
    "nn",
    "planning",
    "queueing",
    "routing",
    "runner",
    "serving",
    "simulator",
    "topology",
    "traffic",
    "training",
    "train",
    "evaluate",
    "predict",
    "simulate",
    "TrainResult",
    "EvalResult",
    "PredictResult",
    "Metrics",
    "InferenceEngine",
    "ServeConfig",
    "ServingService",
    "RouteNet",
    "HyperParams",
    "build_model_input",
    "FeatureScaler",
    "generate_dataset",
    "generate_dataset_run",
    "generate_sample",
    "GenerationConfig",
    "GenerationRun",
    "ParallelRunner",
    "RunnerConfig",
    "ReproError",
    "make_rng",
    "split_rng",
    "Trainer",
    "__version__",
]
