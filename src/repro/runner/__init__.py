"""Resilient, observable parallel execution (``repro.runner``).

The subsystem behind ``generate_dataset(..., workers=N)``:

* :class:`ParallelRunner` — spawn-safe process pool with per-task
  timeouts, bounded deterministic retries, and structured
  :class:`TaskFailure` records;
* :class:`PersistentPool` — long-lived workers fed in synchronous rounds
  (per-step parameter broadcast, crash-respawn-and-resubmit), powering
  data-parallel training;
* :class:`CheckpointStore` — shard/manifest persistence so interrupted
  runs resume without redoing completed tasks;
* :class:`RunMetrics` / :class:`ProgressEvent` — per-run accounting and
  live progress callbacks.

Determinism contract: task ``i`` always runs with ``attempt_seed(seeds[i],
attempt)``, so results are bitwise identical across worker counts and
across interrupted/resumed runs.
"""

from .manifest import CheckpointStore
from .persistent import PersistentPool, PoolStats
from .pool import ParallelRunner, attempt_seed, resolve_context
from .types import (
    ProgressEvent,
    RunMetrics,
    RunResult,
    RunnerConfig,
    Task,
    TaskFailure,
)

__all__ = [
    "CheckpointStore",
    "ParallelRunner",
    "PersistentPool",
    "PoolStats",
    "ProgressEvent",
    "RunMetrics",
    "RunResult",
    "RunnerConfig",
    "Task",
    "TaskFailure",
    "attempt_seed",
    "resolve_context",
]
