"""On-disk checkpointing for runner-driven runs.

A checkpointed run owns one directory::

    <dir>/manifest.json     run header: format version, fingerprint, task count
    <dir>/shards/           one shard-<index>.json per completed task
    <dir>/failures.jsonl    every structured TaskFailure, append-only

Shards are written atomically (temp file + rename) the moment a task
succeeds, so killing a run at any point loses at most in-flight work.
Resuming re-opens the directory, verifies the stored *fingerprint* (a
JSON-serializable description of everything that determines the run's
output — seeds, config, topology...) and returns the already-completed
values so the runner only executes what is missing.  A fingerprint mismatch
is an error rather than a silent regeneration: mixing shards from different
configurations would corrupt the dataset.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from ..errors import RunnerError
from .types import TaskFailure

__all__ = [
    "CheckpointStore",
    "load_manifest",
    "validate_manifest",
    "write_manifest",
]

_FORMAT_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Round-trip through JSON so tuples/lists etc. compare stably."""
    return json.loads(json.dumps(obj, sort_keys=True))


def write_manifest(path: Path, manifest: dict, *, indent: int | None = 2) -> None:
    """Atomically persist a manifest dict (temp file + rename)."""
    CheckpointStore._write_atomic(path, json.dumps(manifest, indent=indent))


def load_manifest(path: Path, *, error: type[Exception] = RunnerError) -> dict:
    """Read and parse a manifest file; raise ``error`` if unreadable."""
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise error(f"corrupt manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise error(f"corrupt manifest {path}: expected a JSON object")
    return manifest


def validate_manifest(
    manifest: dict,
    *,
    directory: Path,
    version: int,
    fingerprint: Any | None = None,
    num_tasks: int | None = None,
    kind: str | None = None,
    error: type[Exception] = RunnerError,
) -> None:
    """Shared manifest-header validation for checkpoint and dataset stores.

    Both the runner's :class:`CheckpointStore` and the streaming dataset
    manifests (``repro.dataset.stream``) follow the same header conventions:
    ``version`` (exact match), optional ``kind`` tag, ``num_tasks`` count and
    a normalized JSON ``fingerprint``.  Mismatches raise ``error`` rather
    than silently re-reading foreign state.
    """
    if kind is not None and manifest.get("kind") != kind:
        raise error(
            f"manifest in {directory} has kind {manifest.get('kind')!r}, "
            f"expected {kind!r}"
        )
    if manifest.get("version") != version:
        raise error(
            f"manifest in {directory} has unsupported format version "
            f"{manifest.get('version')!r} (expected {version})"
        )
    if num_tasks is not None and manifest.get("num_tasks") != num_tasks:
        raise error(
            f"manifest in {directory} was created for "
            f"{manifest.get('num_tasks')} tasks, this run has {num_tasks}"
        )
    if fingerprint is not None and _normalize(manifest.get("fingerprint")) != _normalize(
        fingerprint
    ):
        raise error(
            f"manifest in {directory} belongs to a different run "
            "(fingerprint mismatch); pass resume=False to regenerate"
        )


class CheckpointStore:
    """Shard/manifest persistence for one resumable run.

    Args:
        directory: Checkpoint root (created on :meth:`open`).
        fingerprint: JSON-serializable identity of the run.  Two runs with
            equal fingerprints are guaranteed to execute the same tasks with
            the same seeds.
        encode / decode: Value (de)serializers to/from JSON-friendly dicts;
            identity by default.
    """

    def __init__(
        self,
        directory: str | Path,
        fingerprint: dict,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = _normalize(fingerprint)
        self._encode = encode or (lambda value: value)
        self._decode = decode or (lambda value: value)

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def shards_dir(self) -> Path:
        return self.directory / "shards"

    @property
    def failures_path(self) -> Path:
        return self.directory / "failures.jsonl"

    def _shard_path(self, index: int) -> Path:
        return self.shards_dir / f"shard-{index:06d}.json"

    # ------------------------------------------------------------------
    def open(self, num_tasks: int, resume: bool) -> dict[int, Any]:
        """Prepare the directory; return already-completed ``{index: value}``.

        A fresh run (``resume=False``) discards any previous checkpoint
        state in the directory.  Resuming validates the manifest against
        this run's fingerprint and task count before trusting its shards.

        Raises:
            RunnerError: On fingerprint/task-count mismatch or a corrupt
                manifest when resuming.
        """
        if self.manifest_path.exists():
            if not resume:
                self._discard()
            else:
                return self._load_completed(num_tasks)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "num_tasks": num_tasks,
        }
        self._write_atomic(self.manifest_path, json.dumps(manifest, indent=2))
        return {}

    def _load_completed(self, num_tasks: int) -> dict[int, Any]:
        manifest = load_manifest(self.manifest_path, error=RunnerError)
        validate_manifest(
            manifest,
            directory=self.directory,
            version=_FORMAT_VERSION,
            fingerprint=self.fingerprint,
            num_tasks=num_tasks,
            error=RunnerError,
        )
        completed: dict[int, Any] = {}
        for path in sorted(self.shards_dir.glob("shard-*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                completed[int(record["index"])] = self._decode(record["value"])
            except (OSError, json.JSONDecodeError, KeyError):
                # An unreadable shard just means that task reruns.
                path.unlink(missing_ok=True)
        return completed

    def _discard(self) -> None:
        """Remove checkpoint-owned files only (never unrelated user data)."""
        self.manifest_path.unlink(missing_ok=True)
        self.failures_path.unlink(missing_ok=True)
        if self.shards_dir.exists():
            for path in self.shards_dir.glob("shard-*.json"):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def record(self, index: int, seed: int, attempt: int, value: Any) -> None:
        """Persist one completed task's value (atomic shard write)."""
        record = {
            "index": index,
            "seed": seed,
            "attempt": attempt,
            "value": self._encode(value),
        }
        self._write_atomic(self._shard_path(index), json.dumps(record))

    def record_failure(self, failure: TaskFailure) -> None:
        """Append one structured failure record to ``failures.jsonl``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.failures_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(failure.to_dict()) + "\n")

    def load_failures(self) -> list[dict]:
        """All persisted failure records (across every attempt of the run)."""
        if not self.failures_path.exists():
            return []
        records = []
        with self.failures_path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return records

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        tmp.replace(path)
