"""Long-lived worker pool for per-step task dispatch.

:class:`~repro.runner.ParallelRunner` launches one process per attempt,
which is the right trade for dataset generation (tasks run for seconds and
must be terminable one by one).  Training steps are the opposite workload:
thousands of small tasks, each a few milliseconds of numpy, dispatched in
lockstep rounds — a process per task would spend more time forking than
computing.  :class:`PersistentPool` keeps ``workers`` processes alive for
the lifetime of the pool and feeds them rounds of tasks over queues:

* each worker runs ``initializer(init_payload)`` exactly once at startup
  and threads the returned state into every task, so heavyweight context
  (a model replica, a dataset copy) crosses the process boundary once,
  not per step;
* :meth:`run_step` dispatches one round — tasks are assigned round-robin
  by index, an optional ``broadcast`` value is pickled once per *worker*
  rather than once per task (this is how per-step parameter broadcast
  stays cheap), and results come back in task order;
* a worker that dies mid-round is respawned (re-running the initializer)
  and its outstanding tasks are resubmitted, up to ``max_restarts``
  attempts per task — with deterministic task functions a recomputed
  attempt is indistinguishable from the lost one, so a crash costs wall
  time, never reproducibility;
* exceptions raised by the task function are **not** retried: the pool's
  contract is deterministic workers, so a raise would just raise again.
  The error is re-raised in the parent as :class:`~repro.errors.RunnerError`
  with the worker traceback attached.

The spawn-safety contract matches :class:`ParallelRunner`: ``worker`` and
``initializer`` must be module-level functions, and payloads plain picklable
data, so every multiprocessing start method works.  The RP2xx proofs in
:mod:`repro.analysis.flow.spawnsafety` treat both callables as spawn roots.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .. import tsan
from ..errors import RunnerError
from .pool import resolve_context

__all__ = ["PersistentPool", "PoolStats"]

#: Task signature: ``worker(state, broadcast, payload) -> value``.
StepWorker = Callable[[Any, Any, Any], Any]

#: Initializer signature: ``initializer(init_payload) -> state``.
Initializer = Callable[[Any], Any]

_INIT_FAILED = "__init_failed__"


def _persistent_worker_main(
    worker: StepWorker,
    initializer: Initializer | None,
    init_payload: Any,
    task_queue,
    result_queue,
) -> None:
    """Worker process entry: initialize once, then serve task rounds.

    Top-level (hence picklable) so the pool works under every start method.
    Messages on ``task_queue`` are ``(broadcast, [(task_id, payload), ...])``
    rounds or ``None`` to shut down; every task outcome is posted to
    ``result_queue`` as ``(task_id, ok, value, error)`` with exceptions
    flattened to strings (exception objects may not pickle).
    """
    try:
        state = initializer(init_payload) if initializer is not None else None
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        detail = traceback.format_exc(limit=8)
        result_queue.put((_INIT_FAILED, False, None,
                          (type(exc).__name__, str(exc), detail)))
        return
    while True:
        message = task_queue.get()
        if message is None:
            return
        broadcast, tasks = message
        for task_id, payload in tasks:
            try:
                value = worker(state, broadcast, payload)
            except BaseException as exc:  # noqa: BLE001 — report, parent decides
                detail = traceback.format_exc(limit=8)
                result_queue.put((task_id, False, None,
                                  (type(exc).__name__, str(exc), detail)))
            else:
                result_queue.put((task_id, True, value, None))


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`PersistentPool`."""

    steps: int = 0
    tasks: int = 0
    restarts: int = 0
    resubmitted: int = 0
    worker_starts: int = 0


@dataclass
class _WorkerHandle:
    """Parent-side record of one live worker process."""

    process: multiprocessing.process.BaseProcess
    task_queue: Any
    outstanding: dict[int, Any] = field(default_factory=dict)
    dead_since: float | None = None


class PersistentPool:
    """A pool of long-lived worker processes fed in synchronous rounds.

    Args:
        worker: Module-level callable ``worker(state, broadcast, payload)``.
        workers: Number of worker processes (>= 1).
        initializer: Optional module-level callable run once per worker
            process (and again on respawn after a crash); its return value
            becomes the ``state`` argument of every task.
        init_payload: Picklable argument for ``initializer``.
        mp_context: Start method, as in :func:`~repro.runner.resolve_context`.
        max_restarts: How many times one *task* may be resubmitted after
            worker crashes before the step fails.
        step_timeout: Seconds one :meth:`run_step` round may take before the
            pool gives up (guards against a wedged worker); ``None`` disables.
        poll_interval: Parent-loop polling granularity in seconds.
    """

    def __init__(
        self,
        worker: StepWorker,
        *,
        workers: int,
        initializer: Initializer | None = None,
        init_payload: Any = None,
        mp_context: str = "auto",
        max_restarts: int = 2,
        step_timeout: float | None = None,
        poll_interval: float = 0.01,
        crash_grace: float = 1.0,
    ) -> None:
        if workers < 1:
            raise RunnerError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise RunnerError(f"max_restarts must be >= 0, got {max_restarts}")
        self.worker = worker
        self.workers = workers
        self.initializer = initializer
        self.init_payload = init_payload
        self.max_restarts = max_restarts
        self.step_timeout = step_timeout
        self.poll_interval = poll_interval
        self.crash_grace = crash_grace
        self.stats = PoolStats()
        # Guards every ``self.stats`` counter mutation.  Dispatch itself is
        # single-threaded (the parent thread owns ``_handles``; see the
        # RP502 waivers below), but ``stats`` is read by monitoring threads
        # while a step runs, so its read-modify-write updates take a lock.
        self._stats_lock = tsan.make_lock()
        self._ctx = resolve_context(mp_context)
        self._result_queue = self._ctx.Queue()
        self._handles: list[_WorkerHandle] = []
        self._closed = False
        for _ in range(workers):
            self._handles.append(self._spawn_worker())

    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _WorkerHandle:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_persistent_worker_main,
            args=(self.worker, self.initializer, self.init_payload,
                  task_queue, self._result_queue),
            daemon=True,
        )
        process.start()
        with self._stats_lock:
            tsan.note_access(self.stats, "counters", "write")
            self.stats.worker_starts += 1
        return _WorkerHandle(process=process, task_queue=task_queue)

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run_step(self, payloads: Sequence[Any], broadcast: Any = None) -> list[Any]:
        """Run one round of tasks; returns values in payload order.

        Task ``i`` is assigned to worker ``i % workers``; the assignment is
        fixed so the *computation* each task performs never depends on
        scheduling, only on its payload — which is what makes crash-replay
        invisible to deterministic workers.  ``broadcast`` is sent once per
        worker and handed to every task of the round.

        Raises:
            RunnerError: On a worker exception (never retried), a task that
                exhausts ``max_restarts`` crash resubmissions, a failed
                worker initializer, or a round exceeding ``step_timeout``.
        """
        with self._stats_lock:
            tsan.note_access(self, "_closed", "read")
            closed = self._closed
        if closed:
            raise RunnerError("run_step() on a closed pool")
        payloads = list(payloads)
        if not payloads:
            return []
        with self._stats_lock:
            tsan.note_access(self.stats, "counters", "write")
            self.stats.steps += 1
            self.stats.tasks += len(payloads)

        # A worker that died idle between rounds would silently swallow its
        # share of the round (nothing reads a dead worker's queue): replace
        # it before assigning rather than paying the crash-grace window.
        for slot, handle in enumerate(self._handles):
            if not handle.process.is_alive():
                handle.process.join(timeout=1.0)
                # Parent-thread-only: run_step() is the lone thread root
                # reaching this write, so the RP502 single-writer rule
                # proves it statically; REPRO_TSAN=1 re-proves it at runtime.
                tsan.note_access(self, "_handles", "write")
                self._handles[slot] = self._spawn_worker()
                with self._stats_lock:
                    tsan.note_access(self.stats, "counters", "write")
                    self.stats.restarts += 1

        results: dict[int, Any] = {}
        attempts: dict[int, int] = {task_id: 0 for task_id in range(len(payloads))}
        rounds: list[list[tuple[int, Any]]] = [[] for _ in self._handles]
        for task_id, payload in enumerate(payloads):
            rounds[task_id % len(self._handles)].append((task_id, payload))
        for handle, tasks in zip(self._handles, rounds):
            if tasks:
                handle.outstanding.update(tasks)
                handle.task_queue.put((broadcast, list(tasks)))

        deadline = (
            time.perf_counter() + self.step_timeout
            if self.step_timeout is not None
            else None
        )
        while len(results) < len(payloads):
            drained = self._drain_results(results)
            self._reap_crashed(results, attempts, broadcast, drained)
            if deadline is not None and time.perf_counter() > deadline:
                missing = sorted(set(attempts) - set(results))
                raise RunnerError(
                    f"step exceeded step_timeout={self.step_timeout}s with "
                    f"{len(missing)} task(s) outstanding (ids {missing[:8]})"
                )
        return [results[task_id] for task_id in range(len(payloads))]

    # ------------------------------------------------------------------
    def _drain_results(self, results: dict[int, Any]) -> bool:
        """Move every queued worker message into ``results``; True if any."""
        drained = False
        while True:
            try:
                message = self._result_queue.get(
                    timeout=None if drained else self.poll_interval
                )
            except _queue_mod.Empty:
                return drained
            drained = True
            task_id, ok, value, error = message
            if task_id == _INIT_FAILED:
                error_type, text, detail = error
                raise RunnerError(
                    f"worker initializer failed: {error_type}: {text}\n{detail}"
                )
            if not ok:
                error_type, text, detail = error
                raise RunnerError(
                    f"task {task_id} raised in worker (deterministic tasks are "
                    f"not retried): {error_type}: {text}\n{detail}"
                )
            for handle in self._handles:
                handle.outstanding.pop(task_id, None)
            if task_id not in results:  # crash resubmission may double-report
                results[task_id] = value
            if self._result_queue.empty():
                return drained

    def _reap_crashed(
        self,
        results: dict[int, Any],
        attempts: dict[int, int],
        broadcast: Any,
        drained: bool,
    ) -> None:
        """Respawn dead workers and resubmit the tasks they were holding."""
        now = time.perf_counter()
        for slot, handle in enumerate(self._handles):
            outstanding = {
                task_id: payload
                for task_id, payload in handle.outstanding.items()
                if task_id not in results
            }
            if handle.process.is_alive():
                continue
            if outstanding:
                # The worker may have posted results just before dying and
                # the queue pipe may still hold them: give it a grace window
                # (re-armed whenever the queue makes progress) first.
                if drained:
                    handle.dead_since = None
                if handle.dead_since is None:
                    handle.dead_since = now
                    continue
                if now - handle.dead_since <= self.crash_grace:
                    continue
            exitcode = handle.process.exitcode
            handle.process.join(timeout=1.0)
            replacement = self._spawn_worker()
            # Single-writer: only the run_step() caller thread reaches here,
            # so this write is proved race-free statically and under TSAN.
            tsan.note_access(self, "_handles", "write")
            self._handles[slot] = replacement
            with self._stats_lock:
                tsan.note_access(self.stats, "counters", "write")
                self.stats.restarts += 1
            if not outstanding:
                continue
            for task_id in outstanding:
                attempts[task_id] += 1
                if attempts[task_id] > self.max_restarts:
                    raise RunnerError(
                        f"task {task_id} lost to {attempts[task_id]} worker "
                        f"crash(es) (last exit code {exitcode}); giving up "
                        f"after max_restarts={self.max_restarts}"
                    )
            tasks = sorted(outstanding.items())
            with self._stats_lock:
                tsan.note_access(self.stats, "counters", "write")
                self.stats.resubmitted += len(tasks)
            replacement.outstanding.update(tasks)
            replacement.task_queue.put((broadcast, tasks))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down; idempotent and safe to race.

        The closed flag is checked-and-set under ``_stats_lock``, so of two
        racing closers exactly one proceeds to tear the workers down; the
        blocking joins below deliberately run *outside* any lock (RP503).
        """
        with self._stats_lock:
            tsan.note_access(self, "_closed", "write")
            if self._closed:
                return
            self._closed = True
        for handle in self._handles:
            if handle.process.is_alive():
                try:
                    handle.task_queue.put(None)
                except (OSError, ValueError):  # queue torn down already
                    pass
        deadline = time.perf_counter() + 2.0
        for handle in self._handles:
            handle.process.join(timeout=max(0.1, deadline - time.perf_counter()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.task_queue.close()
        self._result_queue.close()
        # Single-writer proof: the check-and-set above guarantees exactly one
        # thread ever executes this teardown, so the unguarded write cannot
        # race — a fact the flow pass cannot see (it would need to reason
        # about the CAS), hence the waiver.  REPRO_TSAN=1 re-checks it live.
        tsan.note_access(self, "_handles", "write")
        self._handles = []  # repro-lint: disable=RP502
