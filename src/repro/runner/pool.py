"""Resilient process pool with deterministic retries.

The library's original parallel path was ``multiprocessing.get_context
("fork").Pool(...).map`` — fast, but fragile in exactly the ways that matter
for multi-hour dataset-generation runs:

* ``fork`` does not exist on Windows and is unsafe on macOS;
* one crashed or wedged worker killed the entire run with nothing saved;
* a failed scenario had no record of *what* failed, or with which seed.

:class:`ParallelRunner` replaces it with a process-per-task pool (at most
``workers`` live processes): a crash or timeout costs one attempt, never the
run.  Failed attempts are retried up to ``max_retries`` times with fresh
seeds derived deterministically from ``(base_seed, attempt)``, so a
sequential run and any parallel run make byte-identical decisions.  Every
failure is captured as a structured :class:`~repro.runner.TaskFailure`.

Workers are launched one process per attempt, which keeps per-attempt
isolation trivial (terminate on timeout, no poisoned pool state) at the cost
of one process start per task — negligible against packet-level simulation
times.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import RunnerError
from ..random import make_rng
from .types import ProgressEvent, RunMetrics, RunResult, Task, TaskFailure

__all__ = ["ParallelRunner", "attempt_seed", "resolve_context"]

#: Worker signature: ``worker(payload, seed, attempt) -> value``.
Worker = Callable[[Any, int, int], Any]

_SEED_BOUND = 2**63 - 1


def attempt_seed(base_seed: int, attempt: int) -> int:
    """Deterministic seed for one attempt at a task.

    Attempt 0 uses ``base_seed`` unchanged (so runs without failures are
    bitwise identical to the pre-runner sequential code path); retries mix
    the base seed with the attempt number through a counter-based generator,
    which is scheduling-independent: the n-th retry of a task draws the same
    seed no matter how many workers the run uses.
    """
    if attempt == 0:
        return int(base_seed)
    mixed = make_rng((int(base_seed), int(attempt)))
    return int(mixed.integers(0, _SEED_BOUND))


def resolve_context(method: str) -> multiprocessing.context.BaseContext:
    """Resolve an ``mp_context`` name to a multiprocessing context.

    ``"auto"`` prefers ``fork`` (cheap, shares loaded modules) where the
    platform provides it and falls back to ``spawn`` (macOS/Windows safe).
    """
    if method == "auto":
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    try:
        return multiprocessing.get_context(method)
    except ValueError as exc:
        raise RunnerError(f"start method {method!r} unavailable: {exc}") from exc


def _attempt_entry(worker, payload, seed, index, attempt, result_queue) -> None:
    """Subprocess entry: run one attempt and post the outcome.

    Top-level (hence picklable) so it works under every start method,
    including ``spawn``.  Exceptions are flattened to strings before
    crossing the process boundary — exception objects themselves may not
    pickle.
    """
    try:
        value = worker(payload, seed, attempt)
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        detail = traceback.format_exc(limit=8)
        result_queue.put((index, attempt, False, None, (type(exc).__name__, str(exc), detail)))
    else:
        result_queue.put((index, attempt, True, value, None))


@dataclass
class _InFlight:
    """Parent-side record of one running attempt."""

    process: multiprocessing.process.BaseProcess
    task: Task
    attempt: int
    seed: int
    started: float
    dead_since: float | None = None


class ParallelRunner:
    """Runs picklable tasks through a resilient, observable worker pool.

    Args:
        worker: Top-level callable ``worker(payload, seed, attempt)``.  It
            must be importable from the worker process (module-level
            function), and both it and every payload/return value must be
            picklable.
        config: Pool sizing, retry and timeout policy.

    ``run`` executes tasks and returns their values in task order, retrying
    failed attempts with fresh deterministic seeds; see
    :class:`~repro.runner.RunnerConfig` for the failure policy.
    """

    def __init__(self, worker: Worker, config=None) -> None:
        from .types import RunnerConfig

        self.worker = worker
        self.config = config or RunnerConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[Task],
        on_event: Callable[[ProgressEvent], None] | None = None,
        on_result: Callable[[int, int, int, Any], None] | None = None,
        on_failure: Callable[[TaskFailure], None] | None = None,
    ) -> RunResult:
        """Execute ``tasks``; returns values in task-index order.

        Args:
            on_event: Progress callback invoked in the parent process for
                every attempt start/completion/retry/exhaustion.
            on_result: Checkpoint hook ``(index, seed, attempt, value)``
                invoked in the parent as soon as a task succeeds (before the
                run finishes), enabling shard-level persistence.
            on_failure: Hook invoked for every failed attempt as it is
                recorded — fires even when the run subsequently aborts, so
                checkpoints keep failure records from aborted runs.

        Raises:
            RunnerError: When a task exhausts its retry budget and the
                config says ``on_exhausted="raise"``.
        """
        tasks = list(tasks)
        if len({t.index for t in tasks}) != len(tasks):
            raise RunnerError("task indexes must be unique")
        state = _RunState(tasks, self.config, on_event, on_result, on_failure)
        started = time.perf_counter()
        try:
            # Inline only when the pool has one worker: even a single task
            # goes through a subprocess otherwise, so timeout enforcement
            # and crash isolation hold regardless of task count.
            if self.config.workers == 1 or not tasks:
                self._run_inline(tasks, state)
            else:
                self._run_parallel(tasks, state)
        finally:
            state.metrics.wall_time = time.perf_counter() - started
        return state.finish()

    # ------------------------------------------------------------------
    # Inline (workers == 1) path: same retry/seed decisions, no processes.
    # ------------------------------------------------------------------
    def _run_inline(self, tasks: Sequence[Task], state: "_RunState") -> None:
        state.metrics.mp_context = "inline"
        for task in tasks:
            attempt = 0
            while True:
                seed = attempt_seed(task.seed, attempt)
                state.emit("start", task.index, attempt)
                attempt_started = time.perf_counter()
                try:
                    value = self.worker(task.payload, seed, attempt)
                # Converted to a structured TaskFailure record, not swallowed.
                except Exception as exc:  # repro-lint: disable=RP004
                    elapsed = time.perf_counter() - attempt_started
                    failure = TaskFailure(
                        index=task.index,
                        attempt=attempt,
                        seed=seed,
                        kind="exception",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        elapsed=elapsed,
                    )
                    if not state.record_failure(task, failure):
                        break  # exhausted under "skip"
                    attempt += 1
                else:
                    elapsed = time.perf_counter() - attempt_started
                    state.record_success(task, attempt, seed, value, elapsed)
                    break

    # ------------------------------------------------------------------
    # Parallel path: process-per-attempt, bounded by config.workers.
    # ------------------------------------------------------------------
    def _run_parallel(self, tasks: Sequence[Task], state: "_RunState") -> None:
        cfg = self.config
        ctx = resolve_context(cfg.mp_context)
        state.metrics.mp_context = ctx.get_start_method()
        result_queue = ctx.Queue()
        pending: deque[tuple[Task, int]] = deque((task, 0) for task in tasks)
        inflight: dict[tuple[int, int], _InFlight] = {}

        def launch(task: Task, attempt: int) -> None:
            seed = attempt_seed(task.seed, attempt)
            process = ctx.Process(
                target=_attempt_entry,
                args=(self.worker, task.payload, seed, task.index, attempt, result_queue),
                daemon=True,
            )
            process.start()
            inflight[(task.index, attempt)] = _InFlight(
                process=process,
                task=task,
                attempt=attempt,
                seed=seed,
                started=time.perf_counter(),
            )
            state.emit("start", task.index, attempt)

        def settle(key: tuple[int, int], failure: TaskFailure | None, value=None) -> None:
            """Retire one in-flight attempt; schedule its retry on failure."""
            info = inflight.pop(key)
            info.process.join(timeout=1.0)
            elapsed = time.perf_counter() - info.started
            if failure is None:
                state.record_success(info.task, info.attempt, info.seed, value, elapsed)
            elif state.record_failure(info.task, failure):
                pending.append((info.task, info.attempt + 1))

        try:
            while pending or inflight:
                while pending and len(inflight) < cfg.workers:
                    task, attempt = pending.popleft()
                    launch(task, attempt)

                drained = False
                try:
                    message = result_queue.get(timeout=cfg.poll_interval)
                    drained = True
                except _queue_mod.Empty:
                    message = None
                while message is not None:
                    index, attempt, ok, value, error = message
                    key = (index, attempt)
                    if key in inflight:  # a terminated attempt may still report
                        info = inflight[key]
                        if ok:
                            settle(key, None, value)
                        else:
                            error_type, text, detail = error
                            settle(key, TaskFailure(
                                index=index,
                                attempt=attempt,
                                seed=info.seed,
                                kind="exception",
                                error_type=error_type,
                                message=text,
                                elapsed=time.perf_counter() - info.started,
                            ))
                    try:
                        message = result_queue.get_nowait()
                    except _queue_mod.Empty:
                        message = None

                now = time.perf_counter()
                for key, info in list(inflight.items()):
                    if (
                        cfg.task_timeout is not None
                        and now - info.started > cfg.task_timeout
                    ):
                        info.process.terminate()
                        settle(key, TaskFailure(
                            index=info.task.index,
                            attempt=info.attempt,
                            seed=info.seed,
                            kind="timeout",
                            error_type="TimeoutError",
                            message=(
                                f"attempt exceeded task_timeout="
                                f"{cfg.task_timeout}s and was terminated"
                            ),
                            elapsed=now - info.started,
                        ))
                        continue
                    if not info.process.is_alive():
                        # The result may still be in the queue's pipe buffer;
                        # give it a grace window before declaring a crash.
                        if drained:
                            info.dead_since = None  # queue made progress; re-arm
                        if info.dead_since is None:
                            info.dead_since = now
                        elif now - info.dead_since > cfg.crash_grace:
                            exitcode = info.process.exitcode
                            settle(key, TaskFailure(
                                index=info.task.index,
                                attempt=info.attempt,
                                seed=info.seed,
                                kind="crash",
                                error_type="WorkerCrash",
                                message=(
                                    f"worker process died with exit code "
                                    f"{exitcode} before reporting a result"
                                ),
                                elapsed=now - info.started,
                            ))
        finally:
            for info in inflight.values():
                if info.process.is_alive():
                    info.process.terminate()
                info.process.join(timeout=1.0)
            result_queue.close()
            result_queue.join_thread()


class _RunState:
    """Mutable bookkeeping shared by both execution paths."""

    def __init__(self, tasks, config, on_event, on_result, on_failure=None) -> None:
        self.config = config
        self.on_event = on_event
        self.on_result = on_result
        self.on_failure = on_failure
        self.total = len(tasks)
        self.values: dict[int, Any] = {}
        self.order = [task.index for task in tasks]
        self.failures: list[TaskFailure] = []
        self.exhausted: list[int] = []
        self.metrics = RunMetrics(
            total_tasks=self.total, workers=config.workers
        )

    # -- outcomes ------------------------------------------------------
    def record_success(self, task: Task, attempt: int, seed: int, value, elapsed: float) -> None:
        self.values[task.index] = value
        self.metrics.completed += 1
        self.metrics.worker_seconds += elapsed
        if self.on_result is not None:
            self.on_result(task.index, seed, attempt, value)
        self.emit("done", task.index, attempt, elapsed=elapsed)

    def record_failure(self, task: Task, failure: TaskFailure) -> bool:
        """Register a failed attempt; True when the task should be retried."""
        self.failures.append(failure)
        self.metrics.failures += 1
        self.metrics.worker_seconds += failure.elapsed
        if self.on_failure is not None:
            self.on_failure(failure)
        retry = failure.attempt < self.config.max_retries
        if retry:
            self.metrics.retries += 1
            self.emit(
                "retry", task.index, failure.attempt,
                elapsed=failure.elapsed,
                message=f"{failure.kind}: {failure.error_type}: {failure.message}",
            )
            return True
        self.exhausted.append(task.index)
        self.metrics.exhausted += 1
        self.emit(
            "failed", task.index, failure.attempt,
            elapsed=failure.elapsed,
            message=f"{failure.kind}: {failure.error_type}: {failure.message}",
        )
        if self.config.on_exhausted == "raise":
            attempts = failure.attempt + 1
            raise RunnerError(
                f"task {task.index} failed all {attempts} attempt(s); last "
                f"failure: {failure.kind} ({failure.error_type}: "
                f"{failure.message})"
            )
        return False

    # -- reporting -----------------------------------------------------
    def emit(self, kind: str, index: int, attempt: int, elapsed: float = 0.0,
             message: str = "") -> None:
        if self.on_event is None:
            return
        self.on_event(ProgressEvent(
            kind=kind,
            index=index,
            attempt=attempt,
            completed=self.metrics.completed,
            total=self.total,
            elapsed=elapsed,
            message=message,
        ))

    def finish(self) -> RunResult:
        values = [self.values.get(index) for index in self.order]
        return RunResult(
            values=values,
            failures=self.failures,
            exhausted=sorted(self.exhausted),
            metrics=self.metrics,
        )
