"""End-to-end runner resilience smoke test (``python -m repro.runner.selftest``).

Run by CI to exercise the paths a unit test can fake but a release must
prove on a real pool:

1. a 2-worker mini generation with an injected failing task — the run must
   survive via retry, record the structured failure, and still produce every
   sample;
2. an interrupted checkpointed run (one task forced to exhaust its retries)
   followed by a resume that completes only the missing work and ends up
   bitwise identical to a clean sequential run.

Exit code 0 on success; any assertion failure is fatal.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from ..dataset import GenerationConfig, generate_dataset_run
from ..runner import RunnerConfig
from ..topology import synthetic_topology

_NUM_SAMPLES = 6
_SEED = 1302
_CONFIG = GenerationConfig(
    target_packets_per_pair=25.0,
    min_delivered=2,
    intensity_range=(0.3, 0.5),
)


def _check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)


def _same_samples(a, b) -> bool:
    return all(
        x.pairs == y.pairs and np.array_equal(x.delay, y.delay)
        and np.array_equal(x.jitter, y.jitter)
        for x, y in zip(a, b)
    )


def main() -> int:
    topology = synthetic_topology(6, seed=7, mean_degree=2.5)

    print("[selftest] baseline: sequential run ...")
    baseline = generate_dataset_run(topology, _NUM_SAMPLES, seed=_SEED, config=_CONFIG)
    _check(len(baseline.samples) == _NUM_SAMPLES, "baseline generation incomplete")

    print("[selftest] 1/2: 2-worker run with an injected failing task ...")
    run = generate_dataset_run(
        topology, _NUM_SAMPLES, seed=_SEED, config=_CONFIG, workers=2,
        inject_failures={1: 1},
    )
    _check(len(run.samples) == _NUM_SAMPLES, "run with injected failure lost samples")
    _check(run.metrics.retries >= 1, "injected failure was not retried")
    _check(
        any(f.error_type == "InjectedFailure" for f in run.failures),
        "no structured record of the injected failure",
    )
    clean = [s for i, s in enumerate(run.samples) if i != 1]
    base = [s for i, s in enumerate(baseline.samples) if i != 1]
    _check(_same_samples(clean, base), "non-injected tasks diverged from baseline")

    print("[selftest] 2/2: interrupted checkpointed run, then resume ...")
    with tempfile.TemporaryDirectory(prefix="repro-runner-selftest-") as tmp:
        ckpt = Path(tmp) / "run"
        partial = generate_dataset_run(
            topology, _NUM_SAMPLES, seed=_SEED, config=_CONFIG, workers=2,
            runner=RunnerConfig(max_retries=1, on_exhausted="skip"),
            checkpoint_dir=ckpt,
            inject_failures={4: 99},  # task 4 exhausts its retries
        )
        _check(partial.missing == (4,), f"expected task 4 missing, got {partial.missing}")
        _check(
            len(partial.samples) == _NUM_SAMPLES - 1,
            "partial run did not complete the other tasks",
        )
        _check((ckpt / "failures.jsonl").exists(), "failures were not persisted")

        resumed = generate_dataset_run(
            topology, _NUM_SAMPLES, seed=_SEED, config=_CONFIG, workers=2,
            checkpoint_dir=ckpt, resume=True,
        )
        _check(resumed.missing == (), "resume left tasks missing")
        _check(
            resumed.metrics.extras["from_checkpoint"] == _NUM_SAMPLES - 1,
            "resume regenerated already-completed scenarios",
        )
        _check(
            resumed.metrics.total_tasks == 1,
            f"resume should run exactly 1 task, ran {resumed.metrics.total_tasks}",
        )
        _check(
            _same_samples(resumed.samples, baseline.samples),
            "resumed run is not bitwise identical to the sequential baseline",
        )

    print("[selftest] OK: retry, failure records, checkpoint resume all verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
