"""Datatypes of the resilient parallel runner.

Everything here is a plain (frozen where possible) dataclass so runs are
easy to log, serialize into checkpoint manifests, and assert on in tests:

* :class:`Task` — one unit of work with its deterministic base seed;
* :class:`TaskFailure` — a structured record of one failed attempt
  (exception, timeout, or worker crash) instead of a lost traceback;
* :class:`RunnerConfig` — pool sizing, multiprocessing start method,
  per-task timeout and retry budget;
* :class:`ProgressEvent` — what the runner reports to progress callbacks;
* :class:`RunMetrics` / :class:`RunResult` — per-run accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import RunnerError
from ..units import Seconds

__all__ = [
    "Task",
    "TaskFailure",
    "RunnerConfig",
    "ProgressEvent",
    "RunMetrics",
    "RunResult",
]

#: Failure kinds recorded by the runner.
FAILURE_KINDS = ("exception", "timeout", "crash")


@dataclass(frozen=True)
class Task:
    """One unit of work.

    Attributes:
        index: Stable position of the task in the run (results are returned
            in index order regardless of completion order).
        seed: Base seed for attempt 0; retries derive fresh seeds
            deterministically from ``(seed, attempt)`` so a sequential and a
            parallel run retry identically.
        payload: Picklable task input handed to the worker callable.
    """

    index: int
    seed: int
    payload: Any = None


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one failed attempt at a task.

    Attributes:
        index: Task index the failure belongs to.
        attempt: Zero-based attempt number that failed.
        seed: Seed the failed attempt ran with.
        kind: ``"exception"`` (worker raised), ``"timeout"`` (exceeded
            ``RunnerConfig.task_timeout`` and was terminated) or ``"crash"``
            (worker process died without reporting a result).
        error_type: Exception class name (or ``"TimeoutError"`` /
            ``"WorkerCrash"``).
        message: Human-readable error description.
        elapsed: Seconds the attempt ran before failing.
    """

    index: int
    attempt: int
    seed: int
    kind: str
    error_type: str
    message: str
    elapsed: Seconds = 0.0

    def to_dict(self) -> dict:
        """JSON-friendly form (stored in checkpoint ``failures.jsonl``)."""
        return {
            "index": self.index,
            "attempt": self.attempt,
            "seed": self.seed,
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed": self.elapsed,
        }


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs of a :class:`~repro.runner.ParallelRunner`.

    Attributes:
        workers: Worker processes; 1 runs tasks inline (no subprocesses),
            with identical seeding/retry behavior to a parallel run.
        mp_context: Multiprocessing start method — ``"auto"`` picks ``fork``
            where available (fast) and falls back to ``spawn`` elsewhere
            (macOS/Windows safe); ``"fork"`` / ``"spawn"`` /
            ``"forkserver"`` force one.  Workers and payloads must be
            picklable top-level objects so every method works.
        task_timeout: Seconds one attempt may run before its worker process
            is terminated and the attempt recorded as a ``"timeout"``
            failure; ``None`` disables.  Not enforceable on the inline
            (``workers=1``) path.
        max_retries: Extra attempts after the first failure of a task; each
            retry draws a fresh deterministic seed.
        on_exhausted: ``"raise"`` aborts the run with
            :class:`~repro.errors.RunnerError` once any task exhausts its
            retry budget; ``"skip"`` records the failures, leaves ``None``
            in the results, and keeps going.
        poll_interval: Parent-loop polling granularity in seconds.
        crash_grace: Seconds to wait for a dead worker's queued result
            before declaring the attempt a crash.
    """

    workers: int = 1
    mp_context: str = "auto"
    task_timeout: Seconds | None = None
    max_retries: int = 2
    on_exhausted: str = "raise"
    poll_interval: Seconds = 0.05
    crash_grace: Seconds = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise RunnerError(f"workers must be >= 1, got {self.workers}")
        if self.mp_context not in ("auto", "fork", "spawn", "forkserver"):
            raise RunnerError(f"unknown mp_context {self.mp_context!r}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise RunnerError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.max_retries < 0:
            raise RunnerError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.on_exhausted not in ("raise", "skip"):
            raise RunnerError(f"on_exhausted must be 'raise' or 'skip', got {self.on_exhausted!r}")
        if self.poll_interval <= 0:
            raise RunnerError(f"poll_interval must be positive, got {self.poll_interval}")


@dataclass(frozen=True)
class ProgressEvent:
    """One runner life-cycle notification delivered to ``on_event``.

    ``kind`` is one of ``"start"`` (attempt launched), ``"done"`` (task
    completed), ``"retry"`` (attempt failed, another is scheduled),
    ``"failed"`` (task exhausted its retry budget).  ``completed``/``total``
    give overall run progress at emission time.
    """

    kind: str
    index: int
    attempt: int
    completed: int
    total: int
    elapsed: Seconds = 0.0
    message: str = ""


@dataclass
class RunMetrics:
    """Accounting for one runner invocation.

    ``worker_seconds`` sums the wall time of every attempt (successful or
    not) as measured by the parent, so ``utilization`` compares it against
    the pool's total capacity ``wall_time * workers``.  ``extras`` carries
    domain counters (e.g. simulated events) attached by callers.
    """

    total_tasks: int = 0
    completed: int = 0
    exhausted: int = 0
    retries: int = 0
    failures: int = 0
    wall_time: Seconds = 0.0
    worker_seconds: Seconds = 0.0
    workers: int = 1
    mp_context: str = "inline"
    extras: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity spent inside workers."""
        capacity = self.wall_time * self.workers
        return self.worker_seconds / capacity if capacity > 0 else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report (used by the CLI)."""
        lines = [
            f"tasks      {self.completed}/{self.total_tasks} completed"
            + (f", {self.exhausted} exhausted" if self.exhausted else ""),
            f"failures   {self.failures} attempts failed, {self.retries} retried",
            f"wall time  {self.wall_time:.2f}s  ({self.workers} worker(s), "
            f"{self.mp_context}, {self.utilization:.0%} utilization)",
        ]
        for key, value in sorted(self.extras.items()):
            text = f"{value:,}" if isinstance(value, int) else str(value)
            lines.append(f"{key:<10s} {text}")
        return "\n".join(lines)


@dataclass
class RunResult:
    """Outcome of :meth:`ParallelRunner.run`.

    Attributes:
        values: Per-task results in task-index order; ``None`` where a task
            exhausted its retries under ``on_exhausted="skip"``.
        failures: Every failed attempt, in the order they were observed.
        exhausted: Indexes of tasks that never succeeded.
        metrics: Run accounting.
    """

    values: list
    failures: list[TaskFailure]
    exhausted: list[int]
    metrics: RunMetrics
