"""Deterministic randomness helpers.

Every stochastic component in the library (topology generators, routing
randomization, traffic matrices, the packet simulator, weight init, training
shuffles) takes an explicit ``numpy.random.Generator``.  This module provides
the single blessed way of creating them, plus stream-splitting so independent
subsystems never share a stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "split_rng", "DEFAULT_SEED"]

DEFAULT_SEED = 1234


def make_rng(
    seed: int | tuple[int, ...] | np.random.Generator | None = None,
) -> np.random.Generator:
    """Create (or pass through) a ``numpy.random.Generator``.

    Args:
        seed: ``None`` for :data:`DEFAULT_SEED`, an int seed, a tuple of ints
            (entropy sequence — e.g. ``(base_seed, attempt)`` for
            counter-based derived streams), or an existing generator
            (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"need at least one child stream, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
