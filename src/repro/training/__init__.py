"""Training: losses, metrics and the RouteNet trainer."""

from .loss import mse_loss, mae_loss, huber_loss
from .metrics import (
    relative_errors,
    mean_relative_error,
    median_relative_error,
    rmse,
    r_squared,
    pearson,
    regression_summary,
)
from .parallel import DataParallelStepper, ShardResult, default_micro_batch
from .trainer import Trainer, TrainingHistory, EpochStats
from .schedule import StepDecay, ReduceOnPlateau, EarlyStopping
from .validate import FoldResult, CrossValidationResult, cross_validate

__all__ = [
    "FoldResult",
    "CrossValidationResult",
    "cross_validate",
    "StepDecay",
    "ReduceOnPlateau",
    "EarlyStopping",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "relative_errors",
    "mean_relative_error",
    "median_relative_error",
    "rmse",
    "r_squared",
    "pearson",
    "regression_summary",
    "Trainer",
    "TrainingHistory",
    "EpochStats",
    "DataParallelStepper",
    "ShardResult",
    "default_micro_batch",
]
