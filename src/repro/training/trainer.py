"""RouteNet training loop.

Each dataset sample is one runtime-assembled graph, so the natural batch is
a single sample: forward over all of its paths at once, Huber loss on the
standardized log targets, Adam step with global-norm clipping.  Model inputs
are built once per sample and cached across epochs.

Beyond single-sample steps, the trainer has a *fused-batch* fast path:
:meth:`Trainer.train_step_batch` packs B heterogeneous samples into one
:class:`~repro.core.ModelInput` via :func:`repro.serving.pack_inputs` and
runs one forward+backward for the whole batch.  Because fused samples occupy
disjoint slices of the link index space, ``segment_sum`` never mixes
messages across samples, so the fused loss is exactly the per-path mean over
the concatenated batch (see :meth:`train_step_batch` for the weighting
semantics).  Packed batches are content-addressed in the same
:class:`~repro.serving.InputCache` as single-sample inputs, so epoch 2+ of a
fixed batch partition pays zero packing cost.

``fit(workers=N)`` breaks the resulting single-core ceiling by fanning each
step's shard gradients out over a persistent process pool with a
deterministic fixed-order reduction — any worker count reproduces
``workers=1`` bitwise (see :mod:`repro.training.parallel`).
"""

from __future__ import annotations

import hashlib
import time
import weakref
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import nn
from ..analysis.sanitize import sanitize_tape
from ..core import FeatureScaler, ModelInput, RouteNet
from ..dataset import Sample, fit_scaler
from ..dataset.stream import MinibatchSampler, PrefetchLoader
from ..errors import ModelError
from ..random import make_rng
from ..results import EvalResult, Metrics, PredictResult
from ..serving import InferenceEngine, InputCache, ServeConfig
from ..serving.batching import fuse_training_batch, prepare_training_input
from .loss import huber_loss
from .metrics import regression_summary

__all__ = ["EpochStats", "TrainingHistory", "Trainer"]


@dataclass(frozen=True)
class EpochStats:
    """Loss/metric record for one epoch."""

    epoch: int
    train_loss: float
    eval_delay_mre: float | None
    seconds: float


@dataclass
class TrainingHistory:
    """Accumulated per-epoch records."""

    epochs: list[EpochStats] = field(default_factory=list)

    def last(self) -> EpochStats:
        if not self.epochs:
            raise ModelError("no epochs recorded yet")
        return self.epochs[-1]

    @property
    def train_losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]


class Trainer:
    """Owns a model, its scaler, the optimizer and the input cache."""

    def __init__(
        self,
        model: RouteNet,
        scaler: FeatureScaler | None = None,
        include_load: bool = False,
        seed: int | np.random.Generator | None = None,
        sanitize: bool = False,
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.include_load = include_load
        self.sanitize = sanitize
        self._rng = make_rng(seed)
        self._optimizer = nn.Adam(
            list(model.parameters()), lr=model.hparams.learning_rate
        )
        self._input_cache = InputCache()
        self._engine: InferenceEngine | None = None
        self._engine_state: tuple | None = None

    # ------------------------------------------------------------------
    def _sample_key(self, sample: Sample) -> str:
        """Content-hash cache key for one sample under the current config."""
        if self.scaler is None:
            raise ModelError("scaler not set; call fit() or pass one explicitly")
        return self._input_cache.sample_key(
            sample,
            scaler=self.scaler,
            include_load=self.include_load,
            path_feature_dim=self.model.hparams.path_feature_dim,
            readout_targets=self.model.hparams.readout_targets,
        )

    def _prepare(self, sample: Sample) -> tuple[ModelInput, np.ndarray]:
        """Model input + encoded targets for a sample (cached by content).

        Keys are content hashes (see :class:`~repro.serving.InputCache`), not
        ``id(sample)`` — a recycled object id can never serve stale tensors.
        """
        key = self._sample_key(sample)
        cached = self._input_cache.get(key)
        if cached is None:
            cached = prepare_training_input(
                sample,
                scaler=self.scaler,
                include_load=self.include_load,
                path_feature_dim=self.model.hparams.path_feature_dim,
                readout_targets=self.model.hparams.readout_targets,
            )
            self._input_cache.put(key, cached)
        return cached

    def _prepare_batch(
        self, samples: Sequence[Sample]
    ) -> tuple[ModelInput, np.ndarray]:
        """Fused model input + concatenated targets for a batch of samples.

        The fused batch is cached under a content hash derived from the
        member samples' own content keys, so a fixed batch partition (the
        :meth:`fit` fast path) packs each batch exactly once and replays the
        fused arrays every later epoch.  The cached fused ``ModelInput``
        object is stable across epochs, which also lets the forward pass's
        per-input index plan (:func:`repro.core.plan_for`) hit its memo.
        """
        member_keys = [self._sample_key(s) for s in samples]
        batch_key = (
            "batch:" + hashlib.sha256("|".join(member_keys).encode()).hexdigest()
        )
        cached = self._input_cache.get(batch_key)
        if cached is None:
            prepared = [self._prepare(s) for s in samples]
            cached = fuse_training_batch(prepared)
            self._input_cache.put(batch_key, cached)
        return cached

    def _loss_and_step(self, inputs: ModelInput, targets: np.ndarray) -> float:
        """Forward, Huber loss, backward, clip, Adam step; returns the loss."""
        self._optimizer.zero_grad()
        guard = sanitize_tape() if self.sanitize else nullcontext()
        with guard:
            pred = self.model.forward(inputs, training=True)
            loss = huber_loss(pred, targets)
            value = loss.item()
            if not np.isfinite(value):
                raise ModelError(
                    "training diverged: loss is not finite (lower the learning "
                    "rate or check label scaling)"
                )
            loss.backward()
        nn.clip_global_norm(self.model.parameters(), self.model.hparams.grad_clip)
        self._optimizer.step()
        return value

    def train_step(self, sample: Sample) -> float:
        """One optimization step on one sample; returns the loss value.

        With ``sanitize=True`` the whole forward+backward runs under
        :func:`repro.analysis.sanitize_tape`, so a diverging run raises
        :class:`~repro.analysis.NonFiniteError` naming the first op that
        produced a NaN/Inf instead of a generic "loss is not finite".
        """
        inputs, targets = self._prepare(sample)
        return self._loss_and_step(inputs, targets)

    def train_step_batch(self, samples: Sequence[Sample]) -> float:
        """One optimization step on a fused batch; returns the batch loss.

        The B samples are packed into one :class:`~repro.core.ModelInput`
        (targets row-concatenated in the same order) and a single
        forward+backward computes the gradient of the **mean per-path loss
        over the concatenated batch**.  Every path in the batch therefore
        carries equal weight, which means a sample contributes proportionally
        to its path count — a 90-path NSFNET sample weighs 90/132 of a batch
        it shares with a 42-path sample, *not* 1/2.  This matches what
        accumulating ``loss_i * (P_i / P_total)`` over per-sample steps would
        produce, and a gradient-equivalence test pins it.

        A batch of one delegates to :meth:`train_step`, so ``B=1`` is
        bit-identical to single-sample training (no packing, same tape).
        """
        if not samples:
            raise ModelError("cannot train on an empty batch")
        if len(samples) == 1:
            return self.train_step(samples[0])
        inputs, targets = self._prepare_batch(samples)
        return self._loss_and_step(inputs, targets)

    def parallel_stepper(
        self,
        train_samples: Sequence[Sample],
        workers: int,
        micro_batch: int | None = None,
        mp_context: str = "auto",
    ) -> "DataParallelStepper":
        """A :class:`~repro.training.parallel.DataParallelStepper` for this
        trainer — the long-lived worker pool behind ``fit(workers=...)``,
        exposed for benchmarks and custom training loops.

        The returned stepper owns worker processes; close it (or use it as
        a context manager) when done.  Requires a fitted scaler.
        """
        from .parallel import DataParallelStepper

        return DataParallelStepper(
            self,
            train_samples,
            workers=workers,
            micro_batch=micro_batch,
            mp_context=mp_context,
        )

    def fit(
        self,
        train_samples: Sequence[Sample],
        epochs: int,
        eval_samples: list[Sample] | None = None,
        log: Callable[[str], None] | None = None,
        schedule: "StepDecay | ReduceOnPlateau | None" = None,
        early_stopping: "EarlyStopping | None" = None,
        batch_size: int = 1,
        workers: int | None = None,
        micro_batch: int | None = None,
        prefetch: int | None = None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` passes over ``train_samples``.

        Fits the feature scaler on the training set if none was provided.

        ``train_samples`` may be any indexable sequence — an eager list or a
        :class:`~repro.dataset.StreamDataset` directory view.  Samples are
        materialized per step (never all at once), so a streaming source
        trains at flat RAM regardless of dataset size; the epoch order,
        RNG consumption, and resulting losses are bitwise identical to the
        eager-list run over the same records.

        Args:
            schedule: Optional LR schedule — a
                :class:`~repro.training.schedule.StepDecay` (epoch-driven)
                or :class:`~repro.training.schedule.ReduceOnPlateau`
                (metric-driven; monitors eval MRE when ``eval_samples`` is
                given, else the train loss).  A metric-driven schedule's
                ``initial_lr`` is applied before the first step, so epoch 1
                trains at the schedule's rate, not ``hparams.learning_rate``.
            early_stopping: Optional
                :class:`~repro.training.schedule.EarlyStopping` on the same
                monitored metric.
            batch_size: Samples per optimization step.  ``1`` (default) is
                the historical per-sample loop and reproduces its training
                trajectory exactly (same RNG consumption, same step order).
                ``>1`` partitions the training set into fixed consecutive
                chunks once, then shuffles the *batch visit order* each
                epoch — the shuffle-invariant partition keeps every fused
                batch content-cached from epoch 2 on (see
                :meth:`train_step_batch` for the per-path loss weighting).
            workers: When set, run each step data-parallel over this many
                gradient workers (``1`` = same algorithm inline, no
                processes).  Every batch is partitioned into micro-batch
                shards **independently of the worker count** and shard
                gradients are reduced in fixed order, so any ``workers``
                value produces bitwise-identical parameters to
                ``workers=1`` (see :mod:`repro.training.parallel`).
                ``None`` (default) keeps the single-process fast paths.
            micro_batch: Shard size for the data-parallel partition;
                defaults to splitting each batch into up to four shards.
                ``micro_batch >= batch_size`` makes every step single-shard,
                which reproduces the in-process fused step bitwise.
            prefetch: When set, a :class:`~repro.dataset.PrefetchLoader`
                with this many background processes materializes and packs
                the *next* batches (inputs, targets, forward plan) while the
                current step trains, handing pre-packed arrays over a
                bounded queue — the prepare stage becomes a queue pop.
                Packing runs through the same
                :mod:`repro.serving.batching` helpers as the in-process
                path, so losses stay bitwise identical.  Mutually exclusive
                with ``workers`` (gradient parallelism already packs inside
                its own workers).

        The reported per-epoch ``train_loss`` is the **path-weighted** mean
        of per-step losses — i.e. the exact per-path mean Huber loss over
        the epoch.  An unweighted mean would overweight a ragged final
        batch's paths (regression-tested).
        """
        if not len(train_samples):
            raise ModelError("cannot train on an empty sample list")
        if epochs < 1:
            raise ModelError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ModelError(f"batch_size must be >= 1, got {batch_size}")
        if self.scaler is None:
            self.scaler = fit_scaler(train_samples)

        from .schedule import StepDecay

        stepper = None
        if workers is not None:
            from .parallel import DataParallelStepper, default_micro_batch

            if prefetch is not None:
                raise ModelError(
                    "prefetch= and workers= are mutually exclusive: gradient "
                    "workers already materialize and pack their own shards"
                )
            stepper = DataParallelStepper(
                self,
                train_samples,
                workers=workers,
                micro_batch=(
                    micro_batch
                    if micro_batch is not None
                    else default_micro_batch(batch_size)
                ),
            )
        elif micro_batch is not None:
            raise ModelError("micro_batch requires workers= to be set")

        loader = None
        if prefetch is not None:
            if prefetch < 1:
                raise ModelError(f"prefetch must be >= 1, got {prefetch}")
            loader = PrefetchLoader(
                train_samples,
                scaler=self.scaler,
                include_load=self.include_load,
                path_feature_dim=self.model.hparams.path_feature_dim,
                readout_targets=self.model.hparams.readout_targets,
                workers=prefetch,
            )

        history = TrainingHistory()
        # Fixed consecutive partition, shuffled batch visit order each epoch
        # (trajectory mode threads self._rng through the same in-place
        # shuffle the historical loop performed — bitwise-pinned).
        sampler = MinibatchSampler(len(train_samples), batch_size, shuffle=True)
        try:
            for epoch in range(1, epochs + 1):
                started = time.perf_counter()
                if isinstance(schedule, StepDecay):
                    self._optimizer.lr = schedule.lr(epoch)
                elif schedule is not None:
                    # Metric-driven schedules only assigned the LR *after*
                    # observing an epoch, silently training epoch 1 at
                    # hparams.learning_rate; sync up front instead.
                    self._optimizer.lr = schedule.current_lr
                epoch_batches = sampler.epoch_batches(rng=self._rng)
                if stepper is not None:
                    stepped = [stepper.step(batch) for batch in epoch_batches]
                    losses = [loss for loss, _ in stepped]
                    weights = [paths for _, paths in stepped]
                elif loader is not None:
                    losses, weights = [], []
                    for inputs, targets in loader.batches(epoch_batches):
                        losses.append(self._loss_and_step(inputs, targets))
                        weights.append(int(targets.shape[0]))
                elif batch_size == 1:
                    losses = [
                        self.train_step(train_samples[batch[0]])
                        for batch in epoch_batches
                    ]
                    weights = [
                        len(train_samples[batch[0]].pairs) for batch in epoch_batches
                    ]
                else:
                    losses, weights = [], []
                    for batch in epoch_batches:
                        members = [train_samples[i] for i in batch]
                        losses.append(self.train_step_batch(members))
                        weights.append(sum(len(s.pairs) for s in members))
                eval_mre = None
                if eval_samples:
                    eval_mre = self.evaluate(eval_samples).delay.mre
                stats = EpochStats(
                    epoch=epoch,
                    train_loss=float(np.average(losses, weights=weights)),
                    eval_delay_mre=eval_mre,
                    seconds=time.perf_counter() - started,
                )
                history.epochs.append(stats)
                if log is not None:
                    msg = (
                        f"epoch {epoch:3d}  loss {stats.train_loss:.4f}"
                        f"  ({stats.seconds:.1f}s)"
                    )
                    if eval_mre is not None:
                        msg += f"  eval delay MRE {eval_mre:.3f}"
                    if schedule is not None:
                        msg += f"  lr {self._optimizer.lr:.2e}"
                    log(msg)
                monitored = eval_mre if eval_mre is not None else stats.train_loss
                if schedule is not None and not isinstance(schedule, StepDecay):
                    self._optimizer.lr = schedule.observe(monitored)
                if early_stopping is not None and early_stopping.should_stop(monitored):
                    if log is not None:
                        log(f"early stop at epoch {epoch} (best {early_stopping.best:.4f})")
                    break
        finally:
            if stepper is not None:
                stepper.close()
            if loader is not None:
                loader.close()
        return history

    # ------------------------------------------------------------------
    def engine(self, batch_size: int = 32) -> InferenceEngine:
        """A batched :class:`InferenceEngine` sharing this trainer's cache.

        The engine builds inputs through :meth:`_prepare`, so anything already
        prepared for training is served from the same content-keyed cache.

        The cached engine is invalidated whenever any piece of its
        configuration changes — the scaler, ``include_load``, the model
        object, the model's hyperparameters, or the requested
        ``batch_size`` — not just the scaler identity; a stale engine would
        keep serving inputs built under the old configuration.  The engine's
        :class:`~repro.serving.ServeConfig` is frozen, so a changed
        ``batch_size`` *rebuilds* the engine (cheap: inputs live in the
        trainer's content-keyed cache, not the engine) instead of mutating
        ``engine.batch_size`` underneath the frozen ``max_batch``
        (regression-tested).  Object identity is tracked through *weak
        references*, not ``id()``: a dead referent can never validate, so a
        garbage-collected model/scaler whose id the allocator recycles onto
        a new object cannot alias a stale engine (regression-tested).
        """
        if self.scaler is None:
            raise ModelError("scaler not set; call fit() or pass one explicitly")
        state = self._engine_state
        valid = (
            state is not None
            and state[0]() is self.model
            and state[1]() is self.scaler
            and state[2] == self.model.hparams
            and state[3] == self.include_load
            and state[4] == batch_size
        )
        if self._engine is None or not valid:
            self._engine = InferenceEngine(
                self.model,
                self.scaler,
                ServeConfig(include_load=self.include_load, max_batch=batch_size),
                builder=lambda sample: self._prepare(sample)[0],
            )
            self._engine_state = (
                weakref.ref(self.model),
                weakref.ref(self.scaler),
                self.model.hparams,
                self.include_load,
                batch_size,
            )
        return self._engine

    def predict_sample(self, sample: Sample) -> PredictResult:
        """Raw-unit predictions for one sample's measured pairs."""
        inputs, _ = self._prepare(sample)
        return self.model.predict(inputs, self.scaler)

    def evaluate(self, samples: list[Sample], batch_size: int = 32) -> EvalResult:
        """Pooled regression metrics over samples (served in fused batches).

        Returns:
            An :class:`~repro.results.EvalResult`; ``jitter`` is present only
            when the model has a second target AND at least one evaluated
            pair has a positive ground-truth jitter (the zero-jitter filter
            can legitimately leave nothing to score, e.g. on deterministic
            traffic — ``jitter`` is ``None`` then, not a crash).  Dict-style
            access (``result["delay"]["mre"]``) keeps working as a
            deprecation shim.
        """
        if not samples:
            raise ModelError("cannot evaluate an empty sample list")
        preds = self.engine(batch_size).predict_many(samples)
        pred_delay, true_delay = [], []
        pred_jitter, true_jitter = [], []
        for sample, pred in zip(samples, preds):
            pred_delay.append(pred.delay)
            true_delay.append(sample.delay)
            if pred.jitter is not None:
                keep = sample.jitter > 0
                pred_jitter.append(pred.jitter[keep])
                true_jitter.append(sample.jitter[keep])
        jitter = None
        if pred_jitter:
            pooled_pred = np.concatenate(pred_jitter)
            pooled_true = np.concatenate(true_jitter)
            if pooled_pred.size:
                jitter = Metrics.from_dict(
                    regression_summary(pooled_pred, pooled_true)
                )
        return EvalResult(
            delay=Metrics.from_dict(
                regression_summary(
                    np.concatenate(pred_delay), np.concatenate(true_delay)
                )
            ),
            jitter=jitter,
        )
