"""Training losses (operate in standardized log-target space)."""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["mse_loss", "huber_loss", "mae_loss"]


def mse_loss(pred: nn.Tensor, target: np.ndarray) -> nn.Tensor:
    """Mean squared error."""
    diff = pred - np.asarray(target)
    return (diff * diff).mean()


def mae_loss(pred: nn.Tensor, target: np.ndarray) -> nn.Tensor:
    """Mean absolute error."""
    return nn.ops.abs_(pred - np.asarray(target)).mean()


def huber_loss(pred: nn.Tensor, target: np.ndarray, delta: float = 1.0) -> nn.Tensor:
    """Mean Huber loss — robust to the heavy delay tail near saturation.

    Targets arrive already encoded as float64 (``FeatureScaler`` output);
    ``asarray`` without a dtype keeps them alias-only on the hot path.
    """
    return nn.ops.huber(pred, np.asarray(target), delta=delta).mean()
