"""Multi-process data-parallel training with deterministic reduction.

The fused-batch fast path (:meth:`~repro.training.Trainer.train_step_batch`)
is core-count-bound: one process saturates one core.  This module fans the
gradient computation of each optimization step out over a
:class:`~repro.runner.PersistentPool` of long-lived workers while keeping the
update **bitwise reproducible for any worker count**:

1. Each optimization batch is partitioned into consecutive *micro-batch
   shards* of a fixed size.  The partition depends only on the batch and
   ``micro_batch`` — never on the worker count — so every worker count
   computes exactly the same set of shard gradients.
2. Each shard gradient is produced by the same module-level function
   (:func:`_grad_shard_worker`) on a model replica holding the broadcast
   weights — whether that function runs inline (``workers=1``) or in a
   worker process (``workers>1``).  Numpy kernels are deterministic, so
   identical inputs give bitwise-identical shard gradients either way.
3. The coordinator reduces shard gradients in **fixed shard-index order**
   with path-count weights (:func:`repro.nn.accumulate_grads`), then clips
   and applies one Adam step exactly like the single-process trainer.

Together these give the determinism pin: ``fit(workers=N)`` produces
bitwise-identical parameters to ``fit(workers=1)`` for every ``N``, and a
step whose batch fits in a single shard (``micro_batch >= batch_size``)
reproduces the single-process fused step bitwise as well.  A worker crash
mid-step is recovered by the pool's respawn-and-resubmit path; since the
recomputed shard gradient is bitwise identical to the lost one, a crash
never perturbs the trajectory.

The worker closure (:func:`_init_grad_worker` + :func:`_grad_shard_worker`)
is covered by the RP2xx spawn-safety proofs in
:mod:`repro.analysis.flow.spawnsafety`.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .. import nn
from ..analysis.sanitize import sanitize_tape
from ..core import FeatureScaler, HyperParams, RouteNet
from ..dataset import Sample
from ..dataset.stream import StreamDataset
from ..errors import ModelError
from ..runner import PersistentPool
from .loss import huber_loss

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trainer imports us)
    from .trainer import Trainer

__all__ = [
    "DataParallelStepper",
    "ShardResult",
    "default_micro_batch",
    "partition_shards",
]


def default_micro_batch(batch_size: int) -> int:
    """Default shard size: partition each batch into up to four micro-batches.

    Chosen workers-independently so the determinism pin holds across worker
    counts without callers having to think about it; pass ``micro_batch``
    explicitly to scale past four workers (more, smaller shards) or to force
    single-shard steps (``micro_batch >= batch_size``, which also reproduces
    the in-process fused step bitwise).
    """
    return max(1, math.ceil(batch_size / 4))


def partition_shards(
    indices: Sequence[int], micro_batch: int
) -> list[tuple[int, ...]]:
    """Split sample indices into consecutive shards of ``micro_batch``."""
    if micro_batch < 1:
        raise ModelError(f"micro_batch must be >= 1, got {micro_batch}")
    return [
        tuple(indices[i : i + micro_batch])
        for i in range(0, len(indices), micro_batch)
    ]


@dataclass(frozen=True)
class _WorkerInit:
    """Picklable one-shot worker context (crosses the process boundary once).

    ``samples`` is any indexable sample source: an eager tuple (pickled by
    value) or a :class:`~repro.dataset.StreamDataset` (pickled as its
    directory path; each worker opens its own memmaps).
    """

    hparams: dict
    scaler: FeatureScaler
    include_load: bool
    sanitize: bool
    samples: Sequence[Sample]


class _WorkerState:
    """Per-process replica: a model+trainer pair and the training set."""

    def __init__(self, trainer: "Trainer", samples: Sequence[Sample]) -> None:
        self.trainer = trainer
        self.samples = samples
        self.params = list(trainer.model.parameters())


@dataclass(frozen=True)
class ShardResult:
    """One shard's contribution to a step.

    Attributes:
        loss: Mean per-path Huber loss over the shard.
        num_paths: Paths (target rows) in the shard — the reduction weight.
        grads: Dense gradient copies of ``d(loss)/d(param)``, parameter order.
    """

    loss: float
    num_paths: int
    grads: list[np.ndarray]


def _init_grad_worker(payload: _WorkerInit) -> _WorkerState:
    """Build one model replica per worker process (spawn root).

    The replica's initial weights are irrelevant — every task overwrites
    them with the step's broadcast — so a fixed seed keeps construction
    deterministic without threading one through.
    """
    from .trainer import Trainer

    model = RouteNet(HyperParams.from_dict(payload.hparams), seed=0)
    trainer = Trainer(
        model,
        scaler=payload.scaler,
        include_load=payload.include_load,
        sanitize=payload.sanitize,
    )
    return _WorkerState(trainer, payload.samples)


def _grad_shard_worker(
    state: _WorkerState, broadcast: list[np.ndarray], payload: Sequence[int]
) -> ShardResult:
    """Gradient of one micro-batch shard at the broadcast weights (spawn root).

    Runs the exact fused forward+backward of the single-process trainer on
    the shard's packed inputs; the shard's :class:`~repro.serving.InputCache`
    entry makes epoch 2+ packing free, just like the in-process fast path.
    No clipping and no optimizer step happen here — both are global and
    belong to the coordinator after reduction.
    """
    trainer = state.trainer
    nn.load_params(state.params, broadcast)
    batch = [state.samples[i] for i in payload]
    inputs, targets = trainer._prepare_batch(batch)
    trainer._optimizer.zero_grad()
    guard = sanitize_tape() if trainer.sanitize else nullcontext()
    with guard:
        pred = trainer.model.forward(inputs, training=True)
        loss = huber_loss(pred, targets)
        value = loss.item()
        if not np.isfinite(value):
            raise ModelError(
                "training diverged: shard loss is not finite (lower the "
                "learning rate or check label scaling)"
            )
        loss.backward()
    return ShardResult(
        loss=value,
        num_paths=int(targets.shape[0]),
        grads=nn.export_grads(state.params),
    )


class DataParallelStepper:
    """Drives deterministic data-parallel optimization steps for a trainer.

    Owns the worker pool (``workers > 1``) or an in-process replica
    (``workers == 1`` — same code path, no processes) for the lifetime of a
    training run, so workers initialize once and their input caches stay
    warm across epochs.  Use as a context manager or call :meth:`close`.

    Args:
        trainer: The coordinating :class:`~repro.training.Trainer`; its
            model receives the reduced update each step.
        samples: The full training set; steps address it by index so the
            set crosses the process boundary once, at pool startup.
        workers: Gradient worker processes (>= 1).
        micro_batch: Shard size of the workers-independent batch partition;
            defaults to :func:`default_micro_batch`.
        mp_context: Multiprocessing start method (see
            :func:`repro.runner.resolve_context`).
        max_restarts: Crash-resubmission budget per shard and step.
    """

    def __init__(
        self,
        trainer: "Trainer",
        samples: Sequence[Sample],
        *,
        workers: int,
        micro_batch: int | None = None,
        mp_context: str = "auto",
        max_restarts: int = 2,
        step_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        if trainer.scaler is None:
            raise ModelError("scaler not set; fit it before creating a stepper")
        if trainer.model.hparams.dropout > 0:
            raise ModelError(
                "data-parallel training requires dropout=0: dropout draws "
                "from model-internal RNG state, which shard decomposition "
                "would consume in a partition-dependent order"
            )
        if micro_batch is not None and micro_batch < 1:
            raise ModelError(f"micro_batch must be >= 1, got {micro_batch}")
        self.trainer = trainer
        self.workers = workers
        self.micro_batch = micro_batch
        self.params = list(trainer.model.parameters())
        payload = _WorkerInit(
            hparams=trainer.model.hparams.to_dict(),
            scaler=trainer.scaler,
            include_load=trainer.include_load,
            sanitize=trainer.sanitize,
            # A streaming source ships by reference (directory path); eager
            # sequences are frozen to a tuple so every worker sees one
            # immutable copy.
            samples=(
                samples if isinstance(samples, StreamDataset) else tuple(samples)
            ),
        )
        self._pool: PersistentPool | None = None
        self._local_state: _WorkerState | None = None
        if workers > 1:
            self._pool = PersistentPool(
                _grad_shard_worker,
                workers=workers,
                initializer=_init_grad_worker,
                init_payload=payload,
                mp_context=mp_context,
                max_restarts=max_restarts,
                step_timeout=step_timeout,
            )
        else:
            self._local_state = _init_grad_worker(payload)

    # ------------------------------------------------------------------
    def step(self, batch_indices: Sequence[int]) -> tuple[float, int]:
        """One data-parallel optimization step over ``batch_indices``.

        Returns ``(loss, num_paths)`` where ``loss`` is the path-weighted
        mean shard loss — the same per-path mean the fused single-process
        step optimizes — and ``num_paths`` is the batch's total path count
        (the weight :meth:`~repro.training.Trainer.fit` uses for the epoch
        loss).
        """
        if not batch_indices:
            raise ModelError("cannot step on an empty batch")
        micro = (
            self.micro_batch
            if self.micro_batch is not None
            else default_micro_batch(len(batch_indices))
        )
        shards = partition_shards(batch_indices, micro)
        broadcast = nn.export_params(self.params)
        if self._pool is None:
            results = [
                _grad_shard_worker(self._local_state, broadcast, shard)
                for shard in shards
            ]
        else:
            results = self._pool.run_step(shards, broadcast=broadcast)

        total_paths = sum(r.num_paths for r in results)
        optimizer = self.trainer._optimizer
        optimizer.zero_grad()
        loss = 0.0
        # Fixed shard-index order: the reduction consumes results in the
        # partition's order regardless of which process finished first.
        for r in results:
            weight = r.num_paths / total_paths
            nn.accumulate_grads(self.params, r.grads, scale=weight)
            loss += r.loss * weight
        nn.clip_global_norm(self.params, self.trainer.model.hparams.grad_clip)
        optimizer.step()
        return loss, total_paths

    # ------------------------------------------------------------------
    @property
    def pool_stats(self) -> Any:
        """Pool counters (restarts/resubmissions), or ``None`` when inline."""
        return self._pool.stats if self._pool is not None else None

    def close(self) -> None:
        """Shut down the worker pool; idempotent."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "DataParallelStepper":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
