"""K-fold cross-validation for RouteNet configurations.

With the small datasets this repo trains on, a single train/eval split has
high variance; k-fold CV gives honest hyperparameter comparisons (used by
the ablation analysis when ranking close configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import HyperParams, RouteNet
from ..dataset import Sample
from ..errors import ModelError
from ..random import make_rng
from .trainer import Trainer

__all__ = ["FoldResult", "CrossValidationResult", "cross_validate"]


@dataclass(frozen=True)
class FoldResult:
    """Metrics of one fold."""

    fold: int
    train_size: int
    eval_size: int
    delay_mre: float
    delay_r2: float


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregate over folds."""

    folds: list[FoldResult]

    @property
    def mean_mre(self) -> float:
        return float(np.mean([f.delay_mre for f in self.folds]))

    @property
    def std_mre(self) -> float:
        return float(np.std([f.delay_mre for f in self.folds]))

    def __repr__(self) -> str:
        return (
            f"CrossValidationResult(folds={len(self.folds)}, "
            f"mre={self.mean_mre:.3f}+/-{self.std_mre:.3f})"
        )


def cross_validate(
    samples: list[Sample],
    hparams: HyperParams,
    k: int = 4,
    epochs: int = 10,
    seed: int = 0,
) -> CrossValidationResult:
    """Run k-fold CV: train a fresh model per fold, evaluate on the held fold.

    Args:
        samples: Full dataset; folds are a seeded random partition.
        hparams: Model configuration under evaluation.
        k: Number of folds (each must receive at least one sample).
        epochs: Training epochs per fold.
        seed: Controls the partition and all per-fold model/training seeds.

    Raises:
        ModelError: If ``k`` is invalid for the dataset size.
    """
    if k < 2:
        raise ModelError(f"k must be >= 2, got {k}")
    if len(samples) < k:
        raise ModelError(f"need at least k={k} samples, got {len(samples)}")
    rng = make_rng(seed)
    order = rng.permutation(len(samples))
    folds = np.array_split(order, k)

    results = []
    for i, eval_idx in enumerate(folds):
        eval_set = [samples[j] for j in eval_idx]
        train_set = [samples[j] for j in order if j not in set(eval_idx.tolist())]
        model = RouteNet(hparams, seed=seed + 100 + i)
        trainer = Trainer(model, seed=seed + 200 + i)
        trainer.fit(train_set, epochs=epochs)
        metrics = trainer.evaluate(eval_set).delay
        results.append(
            FoldResult(
                fold=i,
                train_size=len(train_set),
                eval_size=len(eval_set),
                delay_mre=metrics.mre,
                delay_r2=metrics.r2,
            )
        )
    return CrossValidationResult(folds=results)
