"""Learning-rate schedules and early stopping."""

from __future__ import annotations

from ..errors import ModelError

__all__ = ["StepDecay", "ReduceOnPlateau", "EarlyStopping"]


class StepDecay:
    """Multiply the learning rate by ``factor`` every ``every`` epochs."""

    def __init__(self, initial_lr: float, factor: float = 0.5, every: int = 10,
                 min_lr: float = 1e-6) -> None:
        if initial_lr <= 0 or not 0 < factor <= 1 or every < 1 or min_lr <= 0:
            raise ModelError("invalid StepDecay parameters")
        self.initial_lr = initial_lr
        self.factor = factor
        self.every = every
        self.min_lr = min_lr

    def lr(self, epoch: int) -> float:
        """Learning rate for a 1-indexed epoch."""
        if epoch < 1:
            raise ModelError(f"epochs are 1-indexed, got {epoch}")
        return max(self.min_lr, self.initial_lr * self.factor ** ((epoch - 1) // self.every))


class ReduceOnPlateau:
    """Halve (by ``factor``) the learning rate when a metric stops improving.

    Call :meth:`observe` once per epoch with the monitored value (lower is
    better); it returns the learning rate to use next.
    """

    def __init__(self, initial_lr: float, factor: float = 0.5, patience: int = 3,
                 min_lr: float = 1e-6, min_delta: float = 1e-4) -> None:
        if initial_lr <= 0 or not 0 < factor < 1 or patience < 1:
            raise ModelError("invalid ReduceOnPlateau parameters")
        self.current_lr = initial_lr
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.min_delta = min_delta
        self._best = float("inf")
        self._stale = 0

    def observe(self, metric: float) -> float:
        if metric < self._best - self.min_delta:
            self._best = metric
            self._stale = 0
        else:
            self._stale += 1
            if self._stale >= self.patience:
                self.current_lr = max(self.min_lr, self.current_lr * self.factor)
                self._stale = 0
        return self.current_lr


class EarlyStopping:
    """Stop when the monitored metric has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-4) -> None:
        if patience < 1:
            raise ModelError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self._best = float("inf")
        self._stale = 0

    @property
    def best(self) -> float:
        return self._best

    def should_stop(self, metric: float) -> bool:
        """Record an epoch's metric; True when training should halt."""
        if metric < self._best - self.min_delta:
            self._best = metric
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience
