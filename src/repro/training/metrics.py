"""Regression quality metrics (computed in raw KPI units)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_errors",
    "mean_relative_error",
    "median_relative_error",
    "rmse",
    "r_squared",
    "pearson",
    "regression_summary",
]


def _validate(pred: np.ndarray, true: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=float)
    true = np.asarray(true, dtype=float)
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs true {true.shape}")
    if pred.size == 0:
        raise ValueError("empty prediction arrays")
    return pred, true


def relative_errors(pred: np.ndarray, true: np.ndarray) -> np.ndarray:
    """Signed relative error ``(pred - true) / true`` per element."""
    pred, true = _validate(pred, true)
    if (true <= 0).any():
        raise ValueError("relative error requires positive ground truth")
    return (pred - true) / true


def mean_relative_error(pred: np.ndarray, true: np.ndarray) -> float:
    """Mean absolute relative error (the paper's headline accuracy metric)."""
    return float(np.abs(relative_errors(pred, true)).mean())


def median_relative_error(pred: np.ndarray, true: np.ndarray) -> float:
    return float(np.median(np.abs(relative_errors(pred, true))))


def rmse(pred: np.ndarray, true: np.ndarray) -> float:
    pred, true = _validate(pred, true)
    return float(np.sqrt(np.mean((pred - true) ** 2)))


def r_squared(pred: np.ndarray, true: np.ndarray) -> float:
    """Coefficient of determination of pred as an estimator of true."""
    pred, true = _validate(pred, true)
    ss_res = float(((true - pred) ** 2).sum())
    ss_tot = float(((true - true.mean()) ** 2).sum())
    if ss_tot == 0.0:  # repro-lint: disable=RP002 -- exact-zero guard
        return 1.0 if ss_res == 0.0 else 0.0  # repro-lint: disable=RP002
    return 1.0 - ss_res / ss_tot


def pearson(pred: np.ndarray, true: np.ndarray) -> float:
    """Pearson correlation coefficient."""
    pred, true = _validate(pred, true)
    if pred.std() == 0.0 or true.std() == 0.0:  # repro-lint: disable=RP002
        return 0.0
    return float(np.corrcoef(pred, true)[0, 1])


def regression_summary(pred: np.ndarray, true: np.ndarray) -> dict[str, float]:
    """All metrics in one dict (used by the evaluation harness)."""
    return {
        "mre": mean_relative_error(pred, true),
        "medre": median_relative_error(pred, true),
        "rmse": rmse(pred, true),
        "r2": r_squared(pred, true),
        "pearson": pearson(pred, true),
        "count": float(len(np.asarray(pred))),
    }
