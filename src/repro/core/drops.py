"""Packet-loss prediction head (extension beyond the demo).

The RouteNet paper lists per-pair drop estimation among the KPIs the
architecture can target; the demo only showcases delay.  This module adds
that extension: the same path-link message-passing backbone with a single
output trained against **logit-encoded loss rates**.

Loss rates live in [0, 1] with heavy mass at 0, so the log-space codec used
for delay/jitter does not fit; :class:`LossRateCodec` standardizes in logit
space with a floor that maps "no observed loss" to a learnable finite value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import nn
from ..dataset.sample import Sample
from ..errors import ModelError
from ..random import make_rng
from .features import FeatureScaler, ModelInput, build_model_input
from .hyperparams import HyperParams
from .routenet import RouteNet

__all__ = ["LossRateCodec", "DropsPredictor"]


@dataclass(frozen=True)
class LossRateCodec:
    """Invertible mapping between loss rates in [0, 1] and model space."""

    floor: float
    logit_mean: float
    logit_std: float

    @staticmethod
    def _logit(p: np.ndarray) -> np.ndarray:
        return np.log(p / (1.0 - p))

    @classmethod
    def fit(cls, loss_rates: np.ndarray, floor: float = 1e-4) -> "LossRateCodec":
        """Fit the standardization from training-set loss rates."""
        rates = np.clip(np.asarray(loss_rates, dtype=float), floor, 1.0 - floor)
        logits = cls._logit(rates)
        std = float(logits.std())
        return cls(
            floor=floor,
            logit_mean=float(logits.mean()),
            logit_std=std if std > 1e-9 else 1.0,
        )

    def encode(self, loss_rates: np.ndarray) -> np.ndarray:
        rates = np.clip(np.asarray(loss_rates, dtype=float), self.floor, 1.0 - self.floor)
        return (self._logit(rates) - self.logit_mean) / self.logit_std

    def decode(self, encoded: np.ndarray) -> np.ndarray:
        logits = np.asarray(encoded, dtype=float) * self.logit_std + self.logit_mean
        return 1.0 / (1.0 + np.exp(-logits))

    def to_dict(self) -> dict:
        return {
            "floor": self.floor,
            "logit_mean": self.logit_mean,
            "logit_std": self.logit_std,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LossRateCodec":
        return cls(
            floor=float(data["floor"]),
            logit_mean=float(data["logit_mean"]),
            logit_std=float(data["logit_std"]),
        )


class DropsPredictor:
    """RouteNet backbone with a loss-rate head.

    Owns a single-target :class:`RouteNet`, the usual input
    :class:`FeatureScaler` (fit on the training samples) and a
    :class:`LossRateCodec` for the targets.
    """

    def __init__(
        self,
        hparams: HyperParams | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        base = hparams or HyperParams()
        if base.readout_targets != 1:
            base = HyperParams.from_dict({**base.to_dict(), "readout_targets": 1})
        self.model = RouteNet(base, seed=seed)
        self.scaler: FeatureScaler | None = None
        self.codec: LossRateCodec | None = None
        self._optimizer = nn.Adam(
            list(self.model.parameters()), lr=base.learning_rate
        )
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------
    def _inputs(self, sample: Sample) -> ModelInput:
        if self.scaler is None:
            raise ModelError("predictor is untrained; call fit() first")
        return build_model_input(
            sample.topology, sample.routing, sample.traffic,
            scaler=self.scaler, pairs=list(sample.pairs),
        )

    def fit(
        self,
        samples: list[Sample],
        epochs: int = 20,
        log: Callable[[str], None] | None = None,
    ) -> list[float]:
        """Train on samples that carry loss labels; returns epoch losses."""
        if not samples:
            raise ModelError("cannot train on an empty sample list")
        all_loss = np.concatenate([s.loss_rate for s in samples])
        if (all_loss == 0).all():
            raise ModelError(
                "training set has zero packet loss everywhere; generate it "
                "at higher intensity or smaller buffers"
            )
        from ..dataset.split import fit_scaler

        self.scaler = fit_scaler(samples)
        self.codec = LossRateCodec.fit(all_loss)

        prepared = [
            (self._inputs(s), self.codec.encode(s.loss_rate)[:, None]) for s in samples
        ]
        order = np.arange(len(prepared))
        epoch_losses = []
        for epoch in range(1, epochs + 1):
            self._rng.shuffle(order)
            losses = []
            for i in order:
                inputs, target = prepared[i]
                self._optimizer.zero_grad()
                pred = self.model.forward(inputs, training=True)
                loss = nn.ops.huber(pred, target).mean()
                loss.backward()
                nn.clip_global_norm(
                    self.model.parameters(), self.model.hparams.grad_clip
                )
                self._optimizer.step()
                losses.append(loss.item())
            epoch_losses.append(float(np.mean(losses)))
            if log is not None:
                log(f"drops epoch {epoch:3d}  loss {epoch_losses[-1]:.4f}")
        return epoch_losses

    # ------------------------------------------------------------------
    def predict(self, sample: Sample) -> np.ndarray:
        """Per-pair loss-rate predictions in [0, 1]."""
        if self.codec is None:
            raise ModelError("predictor is untrained; call fit() first")
        inputs = self._inputs(sample)
        with nn.no_grad():
            encoded = self.model.forward(inputs, training=False).numpy()[:, 0]
        return self.codec.decode(encoded)

    def evaluate(self, samples: list[Sample]) -> dict[str, float]:
        """Loss-appropriate metrics: MAE, RMSE, Pearson, mean levels.

        Relative error is undefined at zero loss, so it is not reported.
        """
        if not samples:
            raise ModelError("cannot evaluate an empty sample list")
        pred = np.concatenate([self.predict(s) for s in samples])
        true = np.concatenate([s.loss_rate for s in samples])
        corr = 0.0
        if pred.std() > 0 and true.std() > 0:
            corr = float(np.corrcoef(pred, true)[0, 1])
        return {
            "mae": float(np.abs(pred - true).mean()),
            "rmse": float(np.sqrt(((pred - true) ** 2).mean())),
            "pearson": corr,
            "mean_true": float(true.mean()),
            "mean_pred": float(pred.mean()),
            "count": float(pred.size),
        }
