"""The RouteNet Graph Neural Network (Rusek et al., SOSR 2019).

RouteNet models a network sample as a bipartite relationship between
*paths* and *links*: each path holds a hidden state ``h_p``, each link a
hidden state ``h_l``, and T rounds of message passing let them exchange
information:

1. **Path update** — every path runs a GRU along the sequence of its links,
   consuming the current link states; the intermediate GRU states are the
   messages the path leaves on each traversed link.
2. **Link update** — every link aggregates (sums) the messages of all paths
   crossing it and applies its own GRU step.

After T iterations a readout MLP maps each path state to the regression
targets (mean per-packet delay and jitter).  Because the unrolled
computation graph is assembled at runtime from the input's path-link
incidence, the same trained weights apply to any topology, routing scheme
and traffic matrix — the generalization property the demo paper challenges.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..errors import ModelError
from ..random import make_rng
from ..results import PredictResult
from .features import FeatureScaler, ModelInput
from .hyperparams import HyperParams
from .plan import plan_for

__all__ = ["RouteNet"]


class RouteNet(nn.Module):
    """Path-link message-passing GNN for per-pair KPI regression."""

    def __init__(
        self,
        hparams: HyperParams | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.hparams = hparams or HyperParams()
        rng = make_rng(seed)
        hp = self.hparams
        # Feature embeddings initialize the hidden states (the reference
        # implementation zero-pads features up to the state width; a learned
        # affine embedding is equivalent and robust to feature count).
        self.link_embed = nn.Dense(hp.link_feature_dim, hp.link_state_dim, rng, activation="tanh")
        self.path_embed = nn.Dense(hp.path_feature_dim, hp.path_state_dim, rng, activation="tanh")
        self.path_cell = nn.make_cell(
            hp.cell_type, hp.link_state_dim, hp.path_state_dim, rng
        )
        self.link_cell = nn.make_cell(
            hp.cell_type, hp.path_state_dim, hp.link_state_dim, rng
        )
        self.readout = nn.MLP(
            hp.path_state_dim,
            list(hp.readout_hidden),
            hp.readout_targets,
            rng,
            activation="relu",
        )
        self._dropout_rng = make_rng(rng)

    # ------------------------------------------------------------------
    def forward(self, inputs: ModelInput, training: bool = False) -> nn.Tensor:
        """Run message passing and return (P, targets) predictions.

        Outputs are in *scaled target space* (standardized log-KPIs); use
        :meth:`predict` for raw units.
        """
        hp = self.hparams
        if inputs.link_features.shape[1] != hp.link_feature_dim:
            raise ModelError(
                f"model expects {hp.link_feature_dim} link features, input has "
                f"{inputs.link_features.shape[1]} (hint: include_load mismatch)"
            )
        if inputs.path_features.shape[1] != hp.path_feature_dim:
            raise ModelError(
                f"model expects {hp.path_feature_dim} path features, input has "
                f"{inputs.path_features.shape[1]} (hint: QoS-class one-hot "
                f"mismatch — classed models need classed samples)"
            )
        num_links = inputs.num_links
        h_link = self.link_embed(nn.tensor(inputs.link_features))
        h_path = self.path_embed(nn.tensor(inputs.path_features))

        # Index-only state (safe gather indices, per-step active masks, the
        # early-break length) is memoized per input: cached training inputs
        # pay for it once, not once per forward call.
        plan = plan_for(inputs)

        for r in range(hp.message_passing_steps):
            nn.tape_mark(f"round/{r}")
            last_round = r == hp.message_passing_steps - 1
            # Transform-then-gather (same trick as the serving fast path):
            # the input-side cell transform of every gathered link state is a
            # row of `gates_all`, so one (L, ·) GEMM per round replaces a
            # (P, ·) GEMM per timestep — bit-identical, each output row is an
            # independent dot product.
            gates_all = self.path_cell.precompute_input(h_link)
            message_sum: nn.Tensor | None = None
            for step in plan.steps:
                gx_t = nn.ops.gather(gates_all, step.safe_ids, plan=step.gather_plan)
                h_new = self.path_cell.step_precomputed(gx_t, h_path)
                if step.all_active:
                    h_path = h_new
                else:
                    h_path = nn.ops.where(step.active_col, h_new, h_path)
                if last_round:
                    # The readout consumes path states only, so the final
                    # link update — and the message aggregation feeding it —
                    # is dead code: the dataflow pass (RP602) flagged it, and
                    # skipping it leaves predictions and gradients bitwise
                    # unchanged while saving one segment_sum per step plus a
                    # full link-cell step per forward.
                    continue
                # The state just after consuming link t is the message this
                # path leaves on that link; padding rows carry id -1 and are
                # dropped by segment_sum.
                contribution = nn.ops.segment_sum(
                    h_path, step.ids, num_links, plan=step.scatter_plan
                )
                message_sum = (
                    contribution if message_sum is None else message_sum + contribution
                )
            if not last_round:
                assert message_sum is not None  # max_len >= 1 by construction
                h_link = self.link_cell(message_sum, h_link)

        out = h_path
        if training and hp.dropout > 0:
            out = nn.ops.dropout(out, hp.dropout, self._dropout_rng, training=True)
        return self.readout(out)

    __call__ = forward

    # ------------------------------------------------------------------
    def predict(self, inputs: ModelInput, scaler: FeatureScaler) -> PredictResult:
        """Inference in raw units.

        Returns:
            A :class:`~repro.results.PredictResult` with ``delay`` (and
            ``jitter`` when the model has 2 targets) arrays ordered like
            ``inputs.pairs``.  Dict-style access (``result["delay"]``) keeps
            working as a deprecation shim.
        """
        with nn.no_grad():
            encoded = self.forward(inputs, training=False).numpy()
        decoded = scaler.decode_targets(encoded)
        return PredictResult(
            pairs=inputs.pairs,
            delay=decoded[:, 0],
            jitter=decoded[:, 1] if decoded.shape[1] > 1 else None,
        )

    # ------------------------------------------------------------------
    # Checkpointing (architecture + scaler + weights in one archive)
    # ------------------------------------------------------------------
    def save(self, path: str, scaler: FeatureScaler, extra_meta: dict | None = None) -> None:
        """Persist weights, hyperparameters and the feature scaler."""
        meta = {
            "hparams": self.hparams.to_dict(),
            "scaler": scaler.to_dict(),
            **(extra_meta or {}),
        }
        nn.save_module(path, self, meta=meta)

    @classmethod
    def load(cls, path: str) -> tuple["RouteNet", FeatureScaler, dict]:
        """Restore a checkpoint written by :meth:`save`.

        Returns:
            ``(model, scaler, extra_meta)``.
        """
        state, meta = nn.load_state(path)
        if "hparams" not in meta or "scaler" not in meta:
            raise ModelError(f"checkpoint {path!r} lacks RouteNet metadata")
        model = cls(HyperParams.from_dict(meta["hparams"]))
        model.load_state_dict(state)
        scaler = FeatureScaler.from_dict(meta["scaler"])
        extra = {k: v for k, v in meta.items() if k not in ("hparams", "scaler")}
        return model, scaler, extra
