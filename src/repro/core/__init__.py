"""The paper's primary contribution: the RouteNet GNN and its input pipeline."""

from .hyperparams import HyperParams
from .features import ModelInput, FeatureScaler, build_model_input
from .plan import ForwardPlan, build_plan, plan_for
from .routenet import RouteNet
from .drops import LossRateCodec, DropsPredictor

__all__ = [
    "HyperParams",
    "ModelInput",
    "FeatureScaler",
    "build_model_input",
    "ForwardPlan",
    "build_plan",
    "plan_for",
    "RouteNet",
    "LossRateCodec",
    "DropsPredictor",
]
