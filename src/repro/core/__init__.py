"""The paper's primary contribution: the RouteNet GNN and its input pipeline."""

from .hyperparams import HyperParams
from .features import ModelInput, FeatureScaler, build_model_input
from .routenet import RouteNet
from .drops import LossRateCodec, DropsPredictor

__all__ = [
    "HyperParams",
    "ModelInput",
    "FeatureScaler",
    "build_model_input",
    "RouteNet",
    "LossRateCodec",
    "DropsPredictor",
]
