"""Conversion of (topology, routing, traffic) into RouteNet model inputs.

RouteNet's runtime-assembled architecture is driven entirely by the
path-link incidence structure of the input sample; this module flattens that
structure into dense arrays:

* ``link_features``  — (L, F_l) per-link inputs (capacity, optionally load);
* ``path_features``  — (P, F_p) per-path inputs (traffic volume);
* ``link_indices``   — (P, max_len) link id at each position of each path,
  padded with -1;
* ``mask``           — (P, max_len) validity of each position.

Feature scaling matters for GRU saturation, so a :class:`FeatureScaler` fit
on the training set is applied to both features and regression targets
(log-space standardization for delay/jitter, which span orders of
magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix, link_loads

__all__ = ["ModelInput", "FeatureScaler", "build_model_input"]


@dataclass(frozen=True)
class ModelInput:
    """Dense tensors describing one sample for RouteNet."""

    pairs: tuple[tuple[int, int], ...]
    link_features: np.ndarray  # (L, F_l) float
    path_features: np.ndarray  # (P, F_p) float
    link_indices: np.ndarray  # (P, max_len) int, -1 padded
    mask: np.ndarray  # (P, max_len) bool

    @property
    def num_paths(self) -> int:
        return self.path_features.shape[0]

    @property
    def num_links(self) -> int:
        return self.link_features.shape[0]

    @property
    def max_path_length(self) -> int:
        return self.link_indices.shape[1]


@dataclass(frozen=True)
class FeatureScaler:
    """Affine scalers for features and log-space target standardization.

    Attributes:
        capacity_scale: Divisor applied to link capacities.
        traffic_scale: Divisor applied to per-path traffic rates.
        load_scale: Divisor applied to per-link offered load (when used).
        target_log_mean / target_log_std: Per-target (delay, jitter)
            standardization of ``log(target)``.
    """

    capacity_scale: float
    traffic_scale: float
    load_scale: float
    target_log_mean: np.ndarray
    target_log_std: np.ndarray

    EPS = 1e-12

    @classmethod
    def fit(
        cls,
        capacities: np.ndarray,
        traffic_rates: np.ndarray,
        targets_log: np.ndarray,
    ) -> "FeatureScaler":
        """Fit scales from training-set statistics.

        Args:
            capacities: All link capacities seen in training.
            traffic_rates: All per-path traffic rates seen in training.
            targets_log: (N, K) log-space regression targets.
        """
        std = targets_log.std(axis=0)
        return cls(
            capacity_scale=float(np.mean(capacities)),
            traffic_scale=float(np.mean(traffic_rates)) or 1.0,
            load_scale=float(np.mean(capacities)),
            target_log_mean=targets_log.mean(axis=0),
            target_log_std=np.where(std < cls.EPS, 1.0, std),
        )

    @classmethod
    def identity(cls, num_targets: int = 2) -> "FeatureScaler":
        """A no-op scaler (useful in unit tests)."""
        return cls(1.0, 1.0, 1.0, np.zeros(num_targets), np.ones(num_targets))

    def encode_targets(self, targets: np.ndarray) -> np.ndarray:
        """Standardize raw positive targets into model space.

        Inputs narrower than the fitted target count use the leading
        statistics (e.g. a delay-only model with a delay+jitter scaler).
        """
        targets = np.asarray(targets, dtype=float)
        k = targets.shape[-1]
        logs = np.log(np.maximum(targets, self.EPS))
        return (logs - self.target_log_mean[:k]) / self.target_log_std[:k]

    def decode_targets(self, encoded: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode_targets` back to raw units."""
        encoded = np.asarray(encoded, dtype=float)
        k = encoded.shape[-1]
        return np.exp(encoded * self.target_log_std[:k] + self.target_log_mean[:k])

    def to_dict(self) -> dict:
        return {
            "capacity_scale": self.capacity_scale,
            "traffic_scale": self.traffic_scale,
            "load_scale": self.load_scale,
            "target_log_mean": self.target_log_mean.tolist(),
            "target_log_std": self.target_log_std.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FeatureScaler":
        return cls(
            capacity_scale=float(data["capacity_scale"]),
            traffic_scale=float(data["traffic_scale"]),
            load_scale=float(data["load_scale"]),
            target_log_mean=np.asarray(data["target_log_mean"], dtype=float),
            target_log_std=np.asarray(data["target_log_std"], dtype=float),
        )


def build_model_input(
    topology: Topology,
    routing: RoutingScheme,
    traffic: TrafficMatrix,
    scaler: FeatureScaler | None = None,
    pairs: list[tuple[int, int]] | None = None,
    include_load: bool = False,
    pair_class: np.ndarray | None = None,
    num_classes: int = 0,
) -> ModelInput:
    """Flatten one network sample into RouteNet input arrays.

    Args:
        pairs: Paths to include; defaults to every routed pair with positive
            demand (the flows the simulator measured).
        scaler: Feature scaling; identity when omitted.
        include_load: Append analytically-computed per-link offered load as a
            second link feature (an ablation extension; the paper's model
            sees capacity only and must *learn* load from structure).
        pair_class: Per-pair QoS class (aligned with ``pairs``); appended as
            one-hot path features for the QoS extension.
        num_classes: One-hot width when ``pair_class`` is given.

    Raises:
        ModelError: If no pair qualifies or classes are inconsistent.
    """
    scaler = scaler or FeatureScaler.identity()
    if pairs is None:
        pairs = [p for p in traffic.nonzero_pairs() if p in routing]
    if not pairs:
        raise ModelError("no routed pairs with positive demand to build inputs from")

    link_cols = [topology.capacities() / scaler.capacity_scale]
    if include_load:
        link_cols.append(
            link_loads(topology, routing, traffic) / scaler.load_scale
        )
    link_features = np.stack(link_cols, axis=1)

    path_features = np.array(
        [[traffic.rate(s, d) / scaler.traffic_scale] for s, d in pairs]
    )
    if pair_class is not None:
        pair_class = np.asarray(pair_class, dtype=int)
        if pair_class.shape != (len(pairs),):
            raise ModelError(
                f"pair_class must have {len(pairs)} entries, got {pair_class.shape}"
            )
        if num_classes < 1 or pair_class.max() >= num_classes:
            raise ModelError(
                f"num_classes={num_classes} too small for classes up to "
                f"{int(pair_class.max())}"
            )
        one_hot = np.zeros((len(pairs), num_classes))
        one_hot[np.arange(len(pairs)), pair_class] = 1.0
        path_features = np.concatenate([path_features, one_hot], axis=1)

    link_paths = [routing.link_path(s, d) for s, d in pairs]
    max_len = max(len(p) for p in link_paths)
    link_indices = np.full((len(pairs), max_len), -1, dtype=np.intp)
    for i, path in enumerate(link_paths):
        link_indices[i, : len(path)] = path
    mask = link_indices >= 0

    return ModelInput(
        pairs=tuple(pairs),
        link_features=link_features,
        path_features=path_features,
        link_indices=link_indices,
        mask=mask,
    )
