"""Precomputed gather/segment index plans for the RouteNet forward pass.

``RouteNet.forward`` is shape-polymorphic: every call used to re-derive the
same index-only quantities from ``ModelInput`` — the padding-safe gather
indices (``safe_idx``), the per-timestep active-path masks, and the
early-break length (the first timestep where every path has ended).  None of
those depend on the model weights, only on the input's path-link incidence,
so for a cached input (every training epoch after the first, every fused
batch replayed from the trainer's :class:`~repro.serving.InputCache`) the
work is pure waste.

:func:`plan_for` memoizes one :class:`ForwardPlan` per live ``ModelInput``.
The memo is keyed by ``id`` but guarded by a weak reference — the same
pattern as :class:`repro.serving.InputCache`'s digest memo — so a recycled
id can never serve a stale plan, and dead entries evict themselves.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..nn.ops import ScatterPlan, make_scatter_plan
from .features import ModelInput

__all__ = ["ForwardPlan", "PlanStep", "build_plan", "plan_for"]


@dataclass(frozen=True)
class PlanStep:
    """Index state for one message-passing timestep.

    Attributes:
        safe_ids: (P,) gather indices with padding mapped to link 0.
        active_col: (P, 1) bool — which paths still traverse a link here
            (column view of the input mask, broadcastable over states).
        ids: (P,) raw link ids, -1 on padding (``segment_sum`` drops those).
        gather_plan: scatter schedule for the link-state gather's backward
            (grouped by ``safe_ids``).
        scatter_plan: scatter schedule for the message aggregation
            (grouped by ``ids``; padding rows dropped).
        all_active: every path traverses a link at this timestep, so the
            masked select is the identity and the forward pass skips it.
    """

    safe_ids: np.ndarray
    active_col: np.ndarray
    ids: np.ndarray
    gather_plan: ScatterPlan
    scatter_plan: ScatterPlan
    all_active: bool


@dataclass(frozen=True)
class ForwardPlan:
    """Everything index-shaped that a forward pass consumes.

    ``steps`` already applies the early break: it stops at the first
    timestep with no active path, exactly like the old per-call
    ``if not active.any(): break``.
    """

    safe_idx: np.ndarray  # (P, max_len) intp, padding mapped to 0
    steps: tuple[PlanStep, ...]

    @property
    def num_steps(self) -> int:
        return len(self.steps)


def build_plan(inputs: ModelInput) -> ForwardPlan:
    """Derive the index plan for one input (no caching)."""
    link_idx = inputs.link_indices
    mask = inputs.mask
    safe_idx = np.where(link_idx >= 0, link_idx, 0)
    steps = []
    for t in range(inputs.max_path_length):
        active = mask[:, t]
        if not active.any():
            break
        steps.append(
            PlanStep(
                safe_ids=safe_idx[:, t],
                active_col=mask[:, t : t + 1],
                ids=link_idx[:, t],
                gather_plan=make_scatter_plan(safe_idx[:, t]),
                scatter_plan=make_scatter_plan(link_idx[:, t]),
                all_active=bool(active.all()),
            )
        )
    return ForwardPlan(safe_idx=safe_idx, steps=tuple(steps))


# id -> (weakref to the planned input, its plan).  The weakref guard means a
# recycled id can never validate against a dead input; the eviction callback
# keeps the memo from growing with dead entries.
_MEMO: dict[int, tuple[weakref.ref, ForwardPlan]] = {}


def plan_for(inputs: ModelInput) -> ForwardPlan:
    """The (memoized) :class:`ForwardPlan` for ``inputs``."""
    key = id(inputs)
    memo = _MEMO.get(key)
    if memo is not None and memo[0]() is inputs:
        return memo[1]
    plan = build_plan(inputs)

    def _evict(ref: weakref.ref, key: int = key) -> None:
        entry = _MEMO.get(key)
        if entry is not None and entry[0] is ref:
            del _MEMO[key]

    try:
        _MEMO[key] = (weakref.ref(inputs, _evict), plan)
    except TypeError:
        pass  # un-weakref-able stand-ins (tests) are simply not memoized
    return plan
