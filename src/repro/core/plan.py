"""Precomputed gather/segment index plans for the RouteNet forward pass.

``RouteNet.forward`` is shape-polymorphic: every call used to re-derive the
same index-only quantities from ``ModelInput`` — the padding-safe gather
indices (``safe_idx``), the per-timestep active-path masks, and the
early-break length (the first timestep where every path has ended).  None of
those depend on the model weights, only on the input's path-link incidence,
so for a cached input (every training epoch after the first, every fused
batch replayed from the trainer's :class:`~repro.serving.InputCache`) the
work is pure waste.

:func:`plan_for` memoizes one :class:`ForwardPlan` per live ``ModelInput``.
The memo is keyed by ``id`` but guarded by a weak reference — the same
pattern as :class:`repro.serving.InputCache`'s digest memo — so a recycled
id can never serve a stale plan, and dead entries evict themselves.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..nn.ops import ScatterPlan, make_scatter_plan
from .features import ModelInput

__all__ = [
    "ForwardPlan",
    "PlanStep",
    "InferenceArena",
    "adopt_plan",
    "build_plan",
    "plan_for",
    "inference_arena_intervals",
]


@dataclass(frozen=True)
class PlanStep:
    """Index state for one message-passing timestep.

    Attributes:
        safe_ids: (P,) gather indices with padding mapped to link 0.
        active_col: (P, 1) bool — which paths still traverse a link here
            (column view of the input mask, broadcastable over states).
        ids: (P,) raw link ids, -1 on padding (``segment_sum`` drops those).
        gather_plan: scatter schedule for the link-state gather's backward
            (grouped by ``safe_ids``).
        scatter_plan: scatter schedule for the message aggregation
            (grouped by ``ids``; padding rows dropped).
        all_active: every path traverses a link at this timestep, so the
            masked select is the identity and the forward pass skips it.
    """

    safe_ids: np.ndarray
    active_col: np.ndarray
    ids: np.ndarray
    gather_plan: ScatterPlan
    scatter_plan: ScatterPlan
    all_active: bool


@dataclass(frozen=True)
class ForwardPlan:
    """Everything index-shaped that a forward pass consumes.

    ``steps`` already applies the early break: it stops at the first
    timestep with no active path, exactly like the old per-call
    ``if not active.any(): break``.
    """

    safe_idx: np.ndarray  # (P, max_len) intp, padding mapped to 0
    steps: tuple[PlanStep, ...]
    num_links: int = 0
    #: Per-model-geometry :class:`InferenceArena` cache.  A mutable field on
    #: a frozen dataclass is fine: the *binding* never changes, only the
    #: dict contents, and the plan's identity/hash ignore it.
    _arenas: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_paths(self) -> int:
        return int(self.safe_idx.shape[0])

    def arena_for(self, model: "object") -> "InferenceArena":
        """The (cached) preallocated execution arena for ``model``'s dims.

        The arena depends only on the model *geometry* (cell type, state
        widths, round count) and this plan's path/link counts, so models
        sharing a geometry share the arena; its lock serializes them.
        """
        key = _arena_key(model)
        arena = self._arenas.get(key)
        if arena is None:
            arena = InferenceArena.build(model, self)
            self._arenas[key] = arena
        return arena


def _arena_key(model: "object") -> tuple:
    hp = model.hparams
    return (
        type(model.path_cell).__name__,
        str(model.path_cell.w.data.dtype),
        hp.link_state_dim,
        hp.path_state_dim,
        hp.message_passing_steps,
    )


def _gates_width(model: "object") -> int:
    """Columns of the path cell's input projection (3H for GRU, H for RNN)."""
    return int(model.path_cell.w.data.shape[1])


def inference_arena_intervals(model: "object", plan: "ForwardPlan") -> list:
    """Liveness intervals of the serving fast path's state buffers.

    The inference timeline is a simple clock: point ``0`` runs the
    embeddings, then round ``r`` computes the gate projection at point
    ``2r + 1`` (the timestep loop reads and rewrites ``h_path`` there) and
    the link update at point ``2r + 2``; the readout runs last.  The final
    round's message aggregation and link update are dead (the readout
    consumes path states only — see RP602) and get no buffers, which is
    what keeps the peak flat in the round count:

    * ``h_path`` — live for the whole pass;
    * ``h_link/r`` — defined by round ``r-1``'s link update (the embedding
      for ``r=0``), last read by round ``r``'s projection and link update;
    * ``gx/r`` — the gate projection, live only during round ``r``'s
      timestep loop;
    * ``msg/r`` — the aggregation buffer, live from the timestep loop to
      the link update (absent for the last round).

    Returns:
        ``BufferInterval`` list for :func:`repro.analysis.dataflow.arena.
        plan_arena`; consecutive ``h_link``/``gx``/``msg`` generations get
        disjoint live ranges, so coloring reuses their bytes automatically.
    """
    from ..analysis.dataflow.arena import BufferInterval

    hp = model.hparams
    rounds = hp.message_passing_steps
    # Slot sizes follow the model's parameter dtype — the engine decides
    # precision, the arena just carves bytes to match.
    itemsize = model.path_cell.w.data.itemsize
    link_bytes = plan.num_links * hp.link_state_dim * itemsize
    path_bytes = plan.num_paths * hp.path_state_dim * itemsize
    gx_bytes = plan.num_links * _gates_width(model) * itemsize
    msg_bytes = plan.num_links * hp.path_state_dim * itemsize

    intervals = [
        BufferInterval("h_path", path_bytes, 0, 2 * rounds + 1),
    ]
    for r in range(rounds):
        last = r == rounds - 1
        intervals.append(BufferInterval(
            f"h_link/{r}", link_bytes, 2 * r, 2 * r + (1 if last else 2)
        ))
        intervals.append(BufferInterval(f"gx/{r}", gx_bytes, 2 * r + 1, 2 * r + 1))
        if not last:
            intervals.append(
                BufferInterval(f"msg/{r}", msg_bytes, 2 * r + 1, 2 * r + 2)
            )
    return intervals


class InferenceArena:
    """One backing allocation carved into the fast path's state buffers.

    Built from the verified :class:`~repro.analysis.dataflow.arena.
    ArenaPlan` over :func:`inference_arena_intervals`: every named view is
    placed at its proved offset, so buffers whose live ranges never overlap
    share bytes and the allocation stays flat no matter how many
    message-passing rounds run.

    Thread safety: the arena is shared state.  :meth:`acquire` hands out
    exclusive use via a non-blocking lock — callers that lose the race run
    the unplanned (allocation-per-call) path instead, which is bitwise
    identical, so correctness never depends on winning.
    """

    def __init__(self, plan: "object", views: dict[str, np.ndarray]) -> None:
        self.plan = plan  # the verified ArenaPlan (kept for introspection)
        self._views = views
        self._lock = threading.Lock()

    @classmethod
    def build(cls, model: "object", fplan: "ForwardPlan") -> "InferenceArena":
        from ..analysis.dataflow.arena import plan_arena

        hp = model.hparams
        shapes = {"h_path": (fplan.num_paths, hp.path_state_dim)}
        for r in range(hp.message_passing_steps):
            shapes[f"h_link/{r}"] = (fplan.num_links, hp.link_state_dim)
            shapes[f"gx/{r}"] = (fplan.num_links, _gates_width(model))
            shapes[f"msg/{r}"] = (fplan.num_links, hp.path_state_dim)

        plan = plan_arena(inference_arena_intervals(model, fplan))
        backing = np.empty(plan.total_bytes, dtype=np.uint8)
        dtype = model.path_cell.w.data.dtype
        views = {}
        for iv in plan.intervals:
            off = plan.offsets[iv.name]
            views[iv.name] = (
                backing[off:off + iv.nbytes]
                .view(dtype)
                .reshape(shapes[iv.name])
            )
        return cls(plan, views)

    def view(self, name: str) -> np.ndarray:
        return self._views[name]

    def acquire(self) -> bool:
        """Try for exclusive use; never blocks (False = use fallback path)."""
        return self._lock.acquire(blocking=False)

    def release(self) -> None:
        self._lock.release()


def build_plan(inputs: ModelInput) -> ForwardPlan:
    """Derive the index plan for one input (no caching)."""
    link_idx = inputs.link_indices
    mask = inputs.mask
    safe_idx = np.where(link_idx >= 0, link_idx, 0)
    steps = []
    for t in range(inputs.max_path_length):
        active = mask[:, t]
        if not active.any():
            break
        steps.append(
            PlanStep(
                safe_ids=safe_idx[:, t],
                active_col=mask[:, t : t + 1],
                ids=link_idx[:, t],
                gather_plan=make_scatter_plan(safe_idx[:, t]),
                scatter_plan=make_scatter_plan(link_idx[:, t]),
                all_active=bool(active.all()),
            )
        )
    return ForwardPlan(
        safe_idx=safe_idx, steps=tuple(steps), num_links=int(inputs.num_links)
    )


# id -> (weakref to the planned input, its plan).  The weakref guard means a
# recycled id can never validate against a dead input; the eviction callback
# keeps the memo from growing with dead entries.
_MEMO: dict[int, tuple[weakref.ref, ForwardPlan]] = {}


def plan_for(inputs: ModelInput) -> ForwardPlan:
    """The (memoized) :class:`ForwardPlan` for ``inputs``."""
    key = id(inputs)
    memo = _MEMO.get(key)
    if memo is not None and memo[0]() is inputs:
        return memo[1]
    plan = build_plan(inputs)

    def _evict(ref: weakref.ref, key: int = key) -> None:
        entry = _MEMO.get(key)
        if entry is not None and entry[0] is ref:
            del _MEMO[key]

    try:
        _MEMO[key] = (weakref.ref(inputs, _evict), plan)
    except TypeError:
        pass  # un-weakref-able stand-ins (tests) are simply not memoized
    return plan


def adopt_plan(inputs: ModelInput, plan: ForwardPlan) -> ForwardPlan:
    """Install a plan computed elsewhere (e.g. a prefetch worker) for ``inputs``.

    The streaming pipeline builds each batch's :class:`ForwardPlan` in the
    background process alongside the packed input; adopting it here lets the
    training step's :func:`plan_for` hit the memo instead of re-deriving the
    scatter schedules on the hot path.  Plans are pure functions of
    ``inputs.link_indices``/``mask``, so an adopted plan is indistinguishable
    from a locally built one.
    """
    key = id(inputs)

    def _evict(ref: weakref.ref, key: int = key) -> None:
        entry = _MEMO.get(key)
        if entry is not None and entry[0] is ref:
            del _MEMO[key]

    try:
        _MEMO[key] = (weakref.ref(inputs, _evict), plan)
    except TypeError:
        pass
    return plan
