"""RouteNet hyperparameters.

The demo paper states: "We use the original implementation of RouteNet and
optimize a set of hyperparameters to adapt the model to scenarios with
larger topologies and more complex routing schemes."  The defaults below are
that adapted configuration scaled to this repo's CPU budget; the ablation
bench (`benchmarks/bench_ablation_hparams.py`) sweeps the two that matter
most (message-passing iterations and state dimension).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

from ..errors import ModelError

__all__ = ["HyperParams"]


@dataclass(frozen=True)
class HyperParams:
    """Architecture and training knobs of :class:`repro.core.RouteNet`.

    Attributes:
        link_state_dim: Hidden-state width of per-link GRU states.
        path_state_dim: Hidden-state width of per-path GRU states.
        message_passing_steps: T, the number of path<->link iterations.
        readout_hidden: Hidden layer sizes of the readout MLP.
        readout_targets: Number of outputs (2 = delay + jitter).
        link_feature_dim: Input features per link (capacity, [load]).
        path_feature_dim: Input features per path (traffic).
        learning_rate: Adam step size.
        grad_clip: Global-norm gradient clip.
        dropout: Readout dropout rate during training.
        cell_type: Recurrent cell for both updates — ``"gru"`` (the paper's
            choice) or ``"rnn"`` (ungated ablation).
    """

    link_state_dim: int = 16
    path_state_dim: int = 16
    message_passing_steps: int = 4
    readout_hidden: tuple[int, ...] = (32, 16)
    readout_targets: int = 2
    link_feature_dim: int = 1
    path_feature_dim: int = 1
    learning_rate: float = 1e-3
    grad_clip: float = 5.0
    dropout: float = 0.0
    cell_type: str = "gru"

    def __post_init__(self) -> None:
        if self.link_state_dim < 1 or self.path_state_dim < 1:
            raise ModelError("state dimensions must be >= 1")
        if self.message_passing_steps < 1:
            raise ModelError(
                f"need at least one message-passing step, got {self.message_passing_steps}"
            )
        if self.readout_targets < 1:
            raise ModelError("readout must produce at least one target")
        if not 0.0 <= self.dropout < 1.0:
            raise ModelError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.cell_type not in ("gru", "rnn"):
            raise ModelError(f"unknown cell type {self.cell_type!r}")

    def to_dict(self) -> dict:
        """JSON-friendly representation (tuples become lists)."""
        d = asdict(self)
        d["readout_hidden"] = list(self.readout_hidden)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "HyperParams":
        data = dict(data)
        data["readout_hidden"] = tuple(data.get("readout_hidden", ()))
        return cls(**data)
