"""Experiment profiles: scaled-down versions of the paper's training setup.

The paper trains on 480,000 samples from NSFNET-14 plus a 50-node synthetic
topology and evaluates on 120,000 held-out samples of those two topologies
plus 300,000 samples of the unseen Geant2-24.  A profile reproduces that
*structure* at a CPU-budget sample count; the ratios between dataset roles
are kept, the absolute volume is not (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import HyperParams
from ..dataset import GenerationConfig

__all__ = ["ExperimentProfile", "PAPER_SMALL", "SMOKE"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Sizes and knobs of one end-to-end reproduction run.

    Attributes:
        name: Cache key prefix; changing any knob should change the name.
        nsfnet_train/nsfnet_eval: Sample counts on NSFNET-14.
        syn50_train/syn50_eval: Sample counts on the 50-node synthetic net.
        geant2_eval: Samples on the unseen Geant2-24 evaluation topology.
        variable_sizes: Node counts for the "variable size" eval family.
        variable_samples_per_size: Scenarios per family member.
        epochs: Training epochs.
        hyperparams: RouteNet configuration.
        nsfnet_gen / syn50_gen / geant2_gen: Per-topology generation knobs
            (the 50-node net uses a sparse traffic matrix to bound DES cost).
        seed: Master seed for the whole experiment.
    """

    name: str
    nsfnet_train: int = 36
    nsfnet_eval: int = 10
    syn50_train: int = 14
    syn50_eval: int = 6
    geant2_eval: int = 12
    variable_sizes: tuple[int, ...] = (20, 30, 40, 50)
    variable_samples_per_size: int = 2
    epochs: int = 30
    hyperparams: HyperParams = field(
        default_factory=lambda: HyperParams(
            link_state_dim=16,
            path_state_dim=16,
            message_passing_steps=4,
            readout_hidden=(32, 16),
            learning_rate=2e-3,
        )
    )
    nsfnet_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=120, min_delivered=15
        )
    )
    syn50_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=100, min_delivered=15, active_fraction=0.25
        )
    )
    geant2_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=120, min_delivered=15, active_fraction=0.8
        )
    )
    # Bursty ("real traffic") datasets for the baseline comparison: on-off
    # sources break the M/M/1 assumptions the analytic baseline relies on.
    bursty_train: int = 20
    bursty_eval: int = 6
    bursty_epochs: int = 30
    bursty_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=300,
            min_delivered=30,
            arrivals="onoff",
            intensity_range=(0.3, 0.8),
        )
    )
    # High-load datasets for the drops-prediction extension: near-saturation
    # bursty traffic with small buffers so per-pair loss is non-trivial.
    drops_train: int = 16
    drops_eval: int = 5
    drops_epochs: int = 25
    drops_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=300,
            min_delivered=30,
            arrivals="onoff",
            intensity_range=(0.7, 0.95),
            buffer_packets=32,
        )
    )
    # Two-class QoS datasets (strict-priority scheduling extension).
    qos_train: int = 14
    qos_eval: int = 5
    qos_epochs: int = 25
    qos_gen: GenerationConfig = field(
        default_factory=lambda: GenerationConfig(
            target_packets_per_pair=150,
            min_delivered=15,
            num_classes=2,
            intensity_range=(0.5, 0.85),
        )
    )
    seed: int = 2019  # the paper's year


#: The default reproduction profile used by the benchmark harness.
PAPER_SMALL = ExperimentProfile(name="paper-small")

#: Minimal profile for quick smoke runs of the harness itself.
SMOKE = ExperimentProfile(
    name="smoke",
    nsfnet_train=6,
    nsfnet_eval=3,
    syn50_train=2,
    syn50_eval=1,
    geant2_eval=3,
    variable_sizes=(16, 24),
    variable_samples_per_size=1,
    epochs=6,
    hyperparams=HyperParams(
        link_state_dim=8,
        path_state_dim=8,
        message_passing_steps=3,
        readout_hidden=(16,),
        learning_rate=3e-3,
    ),
    nsfnet_gen=GenerationConfig(target_packets_per_pair=60, min_delivered=10),
    syn50_gen=GenerationConfig(
        target_packets_per_pair=60, min_delivered=10, active_fraction=0.1
    ),
    geant2_gen=GenerationConfig(
        target_packets_per_pair=60, min_delivered=10, active_fraction=0.4
    ),
    bursty_train=4,
    bursty_eval=2,
    bursty_epochs=6,
    bursty_gen=GenerationConfig(
        target_packets_per_pair=80, min_delivered=10, arrivals="onoff"
    ),
    drops_train=4,
    drops_eval=2,
    drops_epochs=6,
    drops_gen=GenerationConfig(
        target_packets_per_pair=100,
        min_delivered=10,
        arrivals="onoff",
        intensity_range=(0.7, 0.95),
        buffer_packets=32,
    ),
    qos_train=4,
    qos_eval=2,
    qos_epochs=6,
    qos_gen=GenerationConfig(
        target_packets_per_pair=80, min_delivered=10, num_classes=2
    ),
)
