"""Cached experiment artifacts: datasets and trained models on disk.

Dataset simulation and model training dominate the cost of reproducing the
paper, so the :class:`Workbench` materializes them once under a cache
directory (default ``data/``) keyed by profile name.  Benchmarks, examples
and tests all share the same artifacts; deleting the directory forces a full
regeneration.
"""

from __future__ import annotations

import logging
import zipfile
from pathlib import Path
from typing import Callable


from ..core import FeatureScaler, RouteNet
from ..dataset import Sample, generate_dataset_run, load_dataset, save_dataset
from ..errors import ReproError
from ..topology import Topology, geant2, nsfnet, synthetic_topology
from ..training import Trainer
from .profiles import ExperimentProfile, PAPER_SMALL

__all__ = ["Workbench"]

logger = logging.getLogger(__name__)

#: Seed offsets so each dataset role gets an independent stream.
_ROLE_SEEDS = {
    "nsfnet-train": 11,
    "nsfnet-eval": 12,
    "syn50-train": 21,
    "syn50-eval": 22,
    "geant2-eval": 31,
    "variable": 41,
    "bursty-train": 51,
    "bursty-eval": 52,
    "drops-train": 61,
    "drops-eval": 62,
    "qos-train": 71,
    "qos-eval": 72,
}


class Workbench:
    """Builds and caches the paper's datasets and trained model."""

    def __init__(
        self,
        profile: ExperimentProfile = PAPER_SMALL,
        cache_dir: str | Path = "data",
        log: Callable[[str], None] | None = print,
        workers: int = 1,
    ) -> None:
        """Args:
            workers: Parallel simulation processes for dataset generation
                (results are identical to ``workers=1``; see
                :mod:`repro.runner`).
        """
        self.profile = profile
        self.cache_dir = Path(cache_dir)
        self.workers = workers
        self._log = log or (lambda _msg: None)
        self._memo: dict[str, list[Sample]] = {}
        self._model: tuple[RouteNet, FeatureScaler] | None = None

    # ------------------------------------------------------------------
    # Topologies
    # ------------------------------------------------------------------
    def topology_nsfnet(self) -> Topology:
        return nsfnet()

    def topology_syn50(self) -> Topology:
        """The 50-node synthetic training topology (seeded by the profile)."""
        return synthetic_topology(50, seed=self.profile.seed, mean_degree=3.2)

    def topology_geant2(self) -> Topology:
        return geant2()

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def _dataset(
        self, role: str, topology: Topology, count: int, gen_config
    ) -> list[Sample]:
        if role in self._memo:
            return self._memo[role]
        path = self.cache_dir / f"{self.profile.name}-{role}.jsonl"
        if path.exists():
            samples = load_dataset(path)
        else:
            self._log(f"[workbench] simulating {count} samples for {role} ...")
            seed = self.profile.seed * 1000 + _ROLE_SEEDS[role]
            # Checkpointed + resumable: killing a long generation run and
            # re-running the workbench resumes from completed scenarios.
            run = generate_dataset_run(
                topology, count, seed=seed, config=gen_config,
                workers=self.workers,
                checkpoint_dir=self.cache_dir / "runs" / f"{self.profile.name}-{role}",
                resume=True,
            )
            samples = run.samples
            save_dataset(samples, path)
            self._log(
                f"[workbench] wrote {path} "
                f"({run.metrics.completed} fresh, "
                f"{run.metrics.extras.get('from_checkpoint', 0)} resumed)"
            )
        self._memo[role] = samples
        return samples

    def nsfnet_train(self) -> list[Sample]:
        return self._dataset(
            "nsfnet-train", self.topology_nsfnet(), self.profile.nsfnet_train,
            self.profile.nsfnet_gen,
        )

    def nsfnet_eval(self) -> list[Sample]:
        return self._dataset(
            "nsfnet-eval", self.topology_nsfnet(), self.profile.nsfnet_eval,
            self.profile.nsfnet_gen,
        )

    def syn50_train(self) -> list[Sample]:
        return self._dataset(
            "syn50-train", self.topology_syn50(), self.profile.syn50_train,
            self.profile.syn50_gen,
        )

    def syn50_eval(self) -> list[Sample]:
        return self._dataset(
            "syn50-eval", self.topology_syn50(), self.profile.syn50_eval,
            self.profile.syn50_gen,
        )

    def geant2_eval(self) -> list[Sample]:
        """Samples on the topology the model never sees during training."""
        return self._dataset(
            "geant2-eval", self.topology_geant2(), self.profile.geant2_eval,
            self.profile.geant2_gen,
        )

    def variable_size_eval(self) -> dict[int, list[Sample]]:
        """Per-size eval datasets on synthetic topologies of varied size."""
        out: dict[int, list[Sample]] = {}
        for i, size in enumerate(self.profile.variable_sizes):
            topo = synthetic_topology(
                size, seed=self.profile.seed + 100 + i, mean_degree=3.0
            )
            role = f"variable-{size}"
            if role not in _ROLE_SEEDS:
                _ROLE_SEEDS[role] = 410 + i
            out[size] = self._dataset(
                role, topo, self.profile.variable_samples_per_size,
                self.profile.syn50_gen,
            )
        return out

    def bursty_train(self) -> list[Sample]:
        """NSFNET scenarios with on-off sources (the 'real traffic' study)."""
        return self._dataset(
            "bursty-train", self.topology_nsfnet(), self.profile.bursty_train,
            self.profile.bursty_gen,
        )

    def bursty_eval(self) -> list[Sample]:
        return self._dataset(
            "bursty-eval", self.topology_nsfnet(), self.profile.bursty_eval,
            self.profile.bursty_gen,
        )

    def drops_train(self) -> list[Sample]:
        """Near-saturation NSFNET scenarios with observable packet loss."""
        return self._dataset(
            "drops-train", self.topology_nsfnet(), self.profile.drops_train,
            self.profile.drops_gen,
        )

    def drops_eval(self) -> list[Sample]:
        return self._dataset(
            "drops-eval", self.topology_nsfnet(), self.profile.drops_eval,
            self.profile.drops_gen,
        )

    def qos_train(self) -> list[Sample]:
        """Two-class NSFNET scenarios with strict-priority scheduling."""
        return self._dataset(
            "qos-train", self.topology_nsfnet(), self.profile.qos_train,
            self.profile.qos_gen,
        )

    def qos_eval(self) -> list[Sample]:
        return self._dataset(
            "qos-eval", self.topology_nsfnet(), self.profile.qos_eval,
            self.profile.qos_gen,
        )

    def train_set(self) -> list[Sample]:
        """The combined training set: NSFNET-14 + synthetic-50 scenarios."""
        return self.nsfnet_train() + self.syn50_train()

    # ------------------------------------------------------------------
    # Trained model
    # ------------------------------------------------------------------
    def model_path(self) -> Path:
        return self.cache_dir / f"{self.profile.name}-routenet.npz"

    def trained_model(self) -> tuple[RouteNet, FeatureScaler]:
        """The RouteNet trained per the profile (cached checkpoint)."""
        if self._model is not None:
            return self._model
        path = self.model_path()
        cached = self._load_checkpoint(path)
        if cached is not None:
            model, scaler = cached
        else:
            self._log(
                f"[workbench] training RouteNet for {self.profile.epochs} epochs ..."
            )
            model = RouteNet(self.profile.hyperparams, seed=self.profile.seed)
            trainer = Trainer(model, seed=self.profile.seed + 1)
            history = trainer.fit(self.train_set(), epochs=self.profile.epochs,
                                  log=self._log)
            scaler = trainer.scaler
            model.save(
                str(path),
                scaler,
                extra_meta={
                    "profile": self.profile.name,
                    "epochs": self.profile.epochs,
                    "final_train_loss": history.last().train_loss,
                },
            )
            self._log(f"[workbench] wrote {path}")
        self._model = (model, scaler)
        return self._model

    def _load_checkpoint(self, path: Path) -> tuple[RouteNet, FeatureScaler] | None:
        """Load a cached checkpoint, treating unreadable files as absent.

        Only the failure modes a corrupt/stale cache file can actually
        produce are caught (checkpoint-format errors, truncated archives,
        I/O failures); anything else — e.g. a genuine bug in model
        construction — propagates.
        """
        if not path.exists():
            return None
        try:
            model, scaler, _ = RouteNet.load(str(path))
        except (ReproError, OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            logger.warning(
                "discarding unreadable checkpoint %s (%s: %s); it will be "
                "regenerated", path, type(exc).__name__, exc,
            )
            self._log(f"[workbench] discarding unreadable checkpoint {path}: {exc}")
            path.unlink(missing_ok=True)
            return None
        return model, scaler

    def trainer(self) -> Trainer:
        """A Trainer wrapping the cached model (for evaluation calls)."""
        model, scaler = self.trained_model()
        return Trainer(model, scaler=scaler, seed=self.profile.seed + 2)

    # ------------------------------------------------------------------
    # Bursty-traffic model (for the baselines experiment)
    # ------------------------------------------------------------------
    def bursty_model_path(self) -> Path:
        return self.cache_dir / f"{self.profile.name}-routenet-bursty.npz"

    def bursty_trained_model(self) -> tuple[RouteNet, FeatureScaler]:
        """RouteNet trained on the on-off ("real traffic") NSFNET dataset."""
        path = self.bursty_model_path()
        cached = self._load_checkpoint(path)
        if cached is not None:
            return cached
        self._log("[workbench] training bursty-traffic RouteNet ...")
        model = RouteNet(self.profile.hyperparams, seed=self.profile.seed + 7)
        trainer = Trainer(model, seed=self.profile.seed + 8)
        trainer.fit(self.bursty_train(), epochs=self.profile.bursty_epochs,
                    log=self._log)
        model.save(str(path), trainer.scaler,
                   extra_meta={"profile": self.profile.name, "traffic": "onoff"})
        self._log(f"[workbench] wrote {path}")
        return model, trainer.scaler

    def bursty_trainer(self) -> Trainer:
        model, scaler = self.bursty_trained_model()
        return Trainer(model, scaler=scaler, seed=self.profile.seed + 9)
