"""Figure/table data for every evaluation artifact of the paper.

One function per experiment in DESIGN.md's index; each takes a
:class:`~repro.experiments.workbench.Workbench` and returns plain data
structures that the benchmark harness prints (and tests assert on).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..baselines import FixedTopologyMLP, QueueingNetworkModel
from ..errors import ModelError
from ..queueing import ReducedLoadModel
from ..core import build_model_input
from ..dataset import Sample
from ..evaluation import (
    ErrorCDF,
    RegressionData,
    collect_regression,
    compute_error_cdf,
    ranking_agreement,
    top_n_paths,
)
from ..simulator import SimulationConfig, simulate
from ..training import Trainer, regression_summary
from .workbench import Workbench

__all__ = [
    "fig2_regression",
    "fig3_error_cdfs",
    "fig3_jitter_cdfs",
    "fig4_top_paths",
    "generalization_matrix",
    "baseline_comparison",
    "sim_vs_inference",
]

logger = logging.getLogger(__name__)


def _pooled_predictions(
    trainer: Trainer, samples: list[Sample]
) -> tuple[np.ndarray, np.ndarray]:
    predictions = trainer.engine().predict_many(samples)
    preds = [pred.delay for pred in predictions]
    trues = [sample.delay for sample in samples]
    return np.concatenate(preds), np.concatenate(trues)


def fig2_regression(wb: Workbench, sample_index: int = 0) -> RegressionData:
    """Fig. 2: regression scatter on one scenario of the *unseen* Geant2."""
    trainer = wb.trainer()
    samples = wb.geant2_eval()
    sample = samples[sample_index % len(samples)]
    pred = trainer.predict_sample(sample).delay
    return collect_regression(pred, sample.delay, sample.pairs)


def fig3_error_cdfs(wb: Workbench) -> list[ErrorCDF]:
    """Fig. 3: relative-error CDFs on the three evaluation datasets."""
    trainer = wb.trainer()
    datasets = [
        ("nsfnet-14", wb.nsfnet_eval()),
        ("synthetic-50", wb.syn50_eval()),
        ("geant2-24 (unseen)", wb.geant2_eval()),
    ]
    cdfs = []
    for label, samples in datasets:
        pred, true = _pooled_predictions(trainer, samples)
        cdfs.append(compute_error_cdf(pred, true, label=label))
    return cdfs


def fig3_jitter_cdfs(wb: Workbench) -> list[ErrorCDF]:
    """Jitter counterpart of Fig. 3 (RouteNet's second KPI head).

    Pairs whose measured delay variance is zero are excluded (relative
    error is undefined there).
    """
    trainer = wb.trainer()
    datasets = [
        ("nsfnet-14", wb.nsfnet_eval()),
        ("synthetic-50", wb.syn50_eval()),
        ("geant2-24 (unseen)", wb.geant2_eval()),
    ]
    cdfs = []
    for label, samples in datasets:
        preds, trues = [], []
        for sample in samples:
            pred = trainer.predict_sample(sample).jitter
            keep = sample.jitter > 0
            preds.append(pred[keep])
            trues.append(sample.jitter[keep])
        cdfs.append(
            compute_error_cdf(
                np.concatenate(preds), np.concatenate(trues), label=label
            )
        )
    return cdfs


@dataclass(frozen=True)
class TopPathsResult:
    """Fig. 4 payload: the ranked table plus ranking-agreement stats."""

    rows: list
    agreement: dict[str, float]
    sample_meta: dict


def fig4_top_paths(wb: Workbench, n: int = 10, sample_index: int = 0) -> TopPathsResult:
    """Fig. 4: Top-N paths with most predicted delay on a Geant2 scenario."""
    trainer = wb.trainer()
    samples = wb.geant2_eval()
    sample = samples[sample_index % len(samples)]
    pred = trainer.predict_sample(sample).delay
    rows = top_n_paths(sample.pairs, pred, n=n, true_delay=sample.delay)
    agreement = ranking_agreement(pred, sample.delay, n=n)
    return TopPathsResult(rows=rows, agreement=agreement, sample_meta=sample.meta)


def generalization_matrix(wb: Workbench) -> dict[str, dict[str, float]]:
    """The §2.1 claim as a table: delay metrics per evaluation dataset.

    Keys: ``nsfnet-14`` and ``synthetic-50`` (seen topologies, unseen
    samples), ``geant2-24`` (never-seen topology), plus ``variable-<n>``
    rows for the variable-size family.
    """
    trainer = wb.trainer()
    out: dict[str, dict[str, float]] = {}
    for label, samples in [
        ("nsfnet-14", wb.nsfnet_eval()),
        ("synthetic-50", wb.syn50_eval()),
        ("geant2-24", wb.geant2_eval()),
    ]:
        pred, true = _pooled_predictions(trainer, samples)
        out[label] = regression_summary(pred, true)
    for size, samples in wb.variable_size_eval().items():
        pred, true = _pooled_predictions(trainer, samples)
        out[f"variable-{size}"] = regression_summary(pred, true)
    return out


def baseline_comparison(wb: Workbench) -> dict[str, dict[str, dict[str, float] | str]]:
    """RouteNet vs. queueing theory vs. fixed-topology MLP.

    Four evaluation rows reproduce the paper's §1 arguments:

    * Three Poisson datasets (NSFNET-14, synthetic-50, unseen Geant2-24):
      here the workload is exactly Markovian — the *best case* for the
      analytic model — yet RouteNet stays competitive everywhere the
      analytic model is good, and the fixed-topology MLP cannot transfer at
      all ("not applicable" off its training topology).
    * One bursty (on-off sources) NSFNET dataset, i.e. "real traffic
      distributions": the M/M/1 assumptions break and the analytic model's
      error explodes while a RouteNet trained on that workload keeps
      learning it.
    """
    queueing = QueueingNetworkModel(buffer_packets=64)
    reduced = ReducedLoadModel(buffer_packets=64)
    mlp = FixedTopologyMLP(wb.topology_nsfnet(), hidden=(96, 48), seed=7)
    mlp.fit(wb.nsfnet_train(), epochs=40, seed=8)

    rows = [
        ("nsfnet-14 (poisson)", wb.trainer(), wb.nsfnet_eval()),
        ("synthetic-50 (poisson)", wb.trainer(), wb.syn50_eval()),
        ("geant2-24 (poisson)", wb.trainer(), wb.geant2_eval()),
        ("nsfnet-14 (bursty)", wb.bursty_trainer(), wb.bursty_eval()),
    ]
    out: dict[str, dict[str, dict[str, float] | str]] = {}
    for label, trainer, samples in rows:
        row: dict[str, dict[str, float] | str] = {}
        pred, true = _pooled_predictions(trainer, samples)
        row["routenet"] = regression_summary(pred, true)

        qt_pred = np.concatenate(
            [
                queueing.predict(
                    s.topology, s.routing, s.traffic, pairs=list(s.pairs)
                ).delay
                for s in samples
            ]
        )
        row["queueing-theory"] = regression_summary(qt_pred, true)

        fp_pred = np.concatenate(
            [
                reduced.solve(
                    s.topology, s.routing, s.traffic, pairs=list(s.pairs)
                ).delay
                for s in samples
            ]
        )
        row["queueing-fixed-point"] = regression_summary(fp_pred, true)

        try:
            mlp_pred = np.concatenate([mlp.predict(s) for s in samples])
            row["mlp-fixed"] = regression_summary(mlp_pred, true)
        except ModelError as exc:
            # The fixed-topology MLP is *expected* to reject off-topology
            # samples — that inability to generalize is the baseline's point
            # — but record it audibly rather than falling through silently.
            logger.warning(
                "mlp-fixed baseline not applicable on %s: %s", label, exc
            )
            row["mlp-fixed"] = f"not applicable ({type(exc).__name__})"
        out[label] = row
    return out


def sim_vs_inference(wb: Workbench, sample_index: int = 0) -> dict[str, float]:
    """The cost argument: simulator wall time vs. RouteNet inference time.

    Re-simulates one Geant2 scenario with its stored seed/duration and times
    a RouteNet forward pass on the same scenario.
    """
    model, scaler = wb.trained_model()
    sample = wb.geant2_eval()[sample_index % len(wb.geant2_eval())]

    started = time.perf_counter()
    result = simulate(
        sample.topology,
        sample.routing,
        sample.traffic,
        SimulationConfig(
            duration=sample.meta["duration"],
            warmup=0.1 * sample.meta["duration"],
            seed=1,
        ),
    )
    sim_seconds = time.perf_counter() - started

    inputs = build_model_input(
        sample.topology, sample.routing, sample.traffic, scaler=scaler,
        pairs=list(sample.pairs),
    )
    started = time.perf_counter()
    model.predict(inputs, scaler)
    inference_seconds = time.perf_counter() - started

    return {
        "simulation_seconds": sim_seconds,
        "simulated_events": float(result.events_processed),
        "inference_seconds": inference_seconds,
        "speedup": sim_seconds / inference_seconds,
        "paths": float(len(sample.pairs)),
    }
