"""Reproduction harness: profiles, cached artifacts, figure data."""

from .profiles import ExperimentProfile, PAPER_SMALL, SMOKE
from .workbench import Workbench
from .figures import (
    fig2_regression,
    fig3_error_cdfs,
    fig3_jitter_cdfs,
    fig4_top_paths,
    generalization_matrix,
    baseline_comparison,
    sim_vs_inference,
)

__all__ = [
    "ExperimentProfile",
    "PAPER_SMALL",
    "SMOKE",
    "Workbench",
    "fig2_regression",
    "fig3_error_cdfs",
    "fig3_jitter_cdfs",
    "fig4_top_paths",
    "generalization_matrix",
    "baseline_comparison",
    "sim_vs_inference",
]
