"""Unit-annotation vocabulary for the dimensional-analysis pass.

The library's physical conventions (DESIGN.md §5) are: delays and horizons
in **seconds**, link capacities and traffic demands in **bits/s**, packet
sizes in **bits**, mean packet size in **bits per packet**, arrival/service
rates in **packets/s**.  Mixing them up is the classic silent simulator bug
— adding a delay to a capacity type-checks as ``float + float``.

The aliases below make the convention machine-readable: they are plain
``float`` (or ``numpy.ndarray``) at runtime, so annotating a signature
changes nothing about execution, but ``repro.analysis.flow.units`` reads
them from the AST, propagates them through assignments, arithmetic and
calls, and reports unit mixing as RP3xx findings
(``python -m repro.analysis --strict``).

Usage::

    from ..units import BitsPerSecond, Seconds

    def service_time(size: Bits, capacity: BitsPerSecond) -> Seconds:
        return size / capacity        # bits / (bits/s) = s  — proven

Array aliases (``SecondsArray`` etc.) carry the same unit for
``numpy.ndarray``-valued signatures.  The checker treats scalar and array
aliases of a unit identically.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

__all__ = [
    "Seconds",
    "Bits",
    "Packets",
    "BitsPerSecond",
    "PacketsPerSecond",
    "BitsPerPacket",
    "Dimensionless",
    "SecondsArray",
    "BitsArray",
    "BitsPerSecondArray",
    "PacketsPerSecondArray",
    "DimensionlessArray",
]

#: Simulated time / delays / horizons (s).
Seconds: TypeAlias = float
#: Data volumes, e.g. one packet's length (bit).
Bits: TypeAlias = float
#: Packet counts (pkt).
Packets: TypeAlias = float
#: Link capacities and traffic demands (bit/s).
BitsPerSecond: TypeAlias = float
#: Arrival / service rates (pkt/s).
PacketsPerSecond: TypeAlias = float
#: Mean packet size — the bits/s <-> packets/s conversion factor (bit/pkt).
BitsPerPacket: TypeAlias = float
#: Explicitly unit-free quantities (ratios, utilizations, probabilities).
Dimensionless: TypeAlias = float

# Array-valued variants (same units, ndarray-shaped).
SecondsArray: TypeAlias = np.ndarray
BitsArray: TypeAlias = np.ndarray
BitsPerSecondArray: TypeAlias = np.ndarray
PacketsPerSecondArray: TypeAlias = np.ndarray
DimensionlessArray: TypeAlias = np.ndarray
