"""One-call public API: ``train`` / ``evaluate`` / ``predict`` / ``simulate``.

The library grew subsystem by subsystem, and common workflows ended up
spanning half a dozen imports (``dataset`` + ``core`` + ``training`` +
``serving`` ...).  This facade collapses each workflow into a single function
with typed results::

    import repro

    samples = repro.simulate("nsfnet", num_samples=16, seed=7)
    result = repro.train(samples, epochs=20)
    result.save("model.npz")

    metrics = repro.evaluate("model.npz", samples)      # EvalResult
    preds = repro.predict("model.npz", samples)         # list[PredictResult]

Models may be passed as live :class:`RouteNet` objects (with their scaler) or
as checkpoint paths; sample sets as lists or JSONL archive paths; topologies
as objects or names (``"nsfnet"`` / ``"geant2"`` / ``"gbn"`` /
``"synthetic:<nodes>[:<seed>]"``).  Prediction always runs through the
batched :class:`~repro.serving.InferenceEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from .core import FeatureScaler, HyperParams, RouteNet
from .dataset import (
    GenerationConfig,
    Sample,
    StreamDataset,
    generate_dataset_run,
    load_dataset,
    save_dataset,
)
from .errors import ModelError
from .results import EvalResult, Metrics, PredictResult
from .runner import ProgressEvent, RunnerConfig
from .serving import InferenceEngine, ServeConfig
from .topology import Topology, by_name, synthetic_topology
from .training import Trainer, TrainingHistory

__all__ = [
    "TrainResult",
    "EvalResult",
    "PredictResult",
    "Metrics",
    "ServeConfig",
    "train",
    "evaluate",
    "predict",
    "simulate",
]


@dataclass
class TrainResult:
    """Outcome of :func:`train`: the model, its scaler, and the history."""

    model: RouteNet
    scaler: FeatureScaler
    history: TrainingHistory

    @property
    def final_train_loss(self) -> float:
        return self.history.last().train_loss

    def save(self, path: str | Path, **extra_meta) -> None:
        """Checkpoint model + scaler (loadable by every facade function)."""
        meta = {"final_train_loss": self.final_train_loss, **extra_meta}
        self.model.save(str(path), self.scaler, extra_meta=meta)


# ----------------------------------------------------------------------
# Argument coercion
# ----------------------------------------------------------------------
def _resolve_model(
    model: RouteNet | str | Path, scaler: FeatureScaler | None
) -> tuple[RouteNet, FeatureScaler]:
    if isinstance(model, (str, Path)):
        loaded, ckpt_scaler, _meta = RouteNet.load(str(model))
        return loaded, scaler or ckpt_scaler
    if scaler is None:
        raise ModelError(
            "pass scaler= when using a live RouteNet (checkpoint paths carry "
            "their scaler)"
        )
    return model, scaler


def _resolve_samples(
    samples: Sequence[Sample] | Sample | str | Path,
) -> Sequence[Sample]:
    if isinstance(samples, (str, Path)):
        path = Path(samples)
        if path.is_dir():
            # A directory is a converted stream dataset: serve samples
            # straight off the memory-mapped shards instead of materializing
            # the whole set.
            return StreamDataset(path)
        return load_dataset(path)
    if isinstance(samples, Sample):
        return [samples]
    if isinstance(samples, StreamDataset):
        return samples
    return list(samples)


def _resolve_topology(topology: Topology | str) -> Topology:
    if isinstance(topology, Topology):
        return topology
    if topology.startswith("synthetic:"):
        parts = topology.split(":")
        seed = int(parts[2]) if len(parts) > 2 else 0
        return synthetic_topology(int(parts[1]), seed=seed)
    return by_name(topology)


# ----------------------------------------------------------------------
# Workflows
# ----------------------------------------------------------------------
def train(
    samples: Sequence[Sample] | str | Path,
    *,
    epochs: int = 20,
    hparams: HyperParams | None = None,
    seed: int = 0,
    include_load: bool = False,
    eval_samples: Sequence[Sample] | str | Path | None = None,
    checkpoint: str | Path | None = None,
    log: Callable[[str], None] | None = None,
    schedule=None,
    early_stopping=None,
    sanitize: bool = False,
    batch_size: int = 1,
    workers: int | None = None,
    micro_batch: int | None = None,
    prefetch: int | None = None,
) -> TrainResult:
    """Train a fresh RouteNet on ``samples``.

    Args:
        samples: Training samples, a JSONL archive path, or a converted
            stream-dataset *directory* (see ``repro dataset convert``),
            which is served off memory-mapped shards without loading the
            whole set.
        epochs: Passes over the training set.
        hparams: Model architecture; library defaults when omitted.
        seed: Seeds both model init and the trainer's shuffling.
        include_load: Add the analytic per-link load input feature.
        eval_samples: Optional held-out set evaluated each epoch.
        checkpoint: When given, the trained model is saved here.
        log: Per-epoch progress sink (e.g. ``print``).
        schedule / early_stopping: Forwarded to :meth:`Trainer.fit`.
        sanitize: Run every train step under the tape sanitizer
            (:func:`repro.analysis.sanitize_tape`), so a divergence raises
            :class:`~repro.analysis.NonFiniteError` naming the first op
            that produced a NaN/Inf.  Costs one ``isfinite`` scan per op.
        batch_size: Samples fused per optimization step.  ``1`` (default)
            reproduces the historical per-sample trajectory exactly; larger
            values pack heterogeneous samples into one forward+backward
            (see :meth:`Trainer.train_step_batch`).
        workers: When set, fan each step's gradient computation out over
            this many worker processes with a deterministic fixed-order
            reduction — parameters are bitwise identical for any worker
            count (see :mod:`repro.training.parallel`).  ``None`` keeps
            the single-process fast paths.
        micro_batch: Shard size of the data-parallel batch partition
            (requires ``workers``); defaults to up to four shards per batch.
        prefetch: When set, pack each step's batch in this many background
            processes one step ahead of the optimizer
            (:class:`~repro.dataset.PrefetchLoader`), overlapping input
            preparation with compute.  Bitwise identical to the in-process
            path; mutually exclusive with ``workers``.
    """
    train_set = _resolve_samples(samples)
    eval_set = _resolve_samples(eval_samples) if eval_samples is not None else None
    model = RouteNet(hparams, seed=seed)
    trainer = Trainer(
        model, include_load=include_load, seed=seed + 1, sanitize=sanitize
    )
    history = trainer.fit(
        train_set,
        epochs=epochs,
        eval_samples=eval_set,
        log=log,
        schedule=schedule,
        early_stopping=early_stopping,
        batch_size=batch_size,
        workers=workers,
        micro_batch=micro_batch,
        prefetch=prefetch,
    )
    result = TrainResult(model=model, scaler=trainer.scaler, history=history)
    if checkpoint is not None:
        result.save(checkpoint, epochs=epochs)
    return result


def evaluate(
    model: RouteNet | str | Path,
    samples: Sequence[Sample] | str | Path,
    *,
    scaler: FeatureScaler | None = None,
    include_load: bool = False,
    batch_size: int = 32,
) -> EvalResult:
    """Pooled regression metrics of ``model`` over ``samples``.

    Predictions are served in fused batches of ``batch_size``.
    """
    resolved_model, resolved_scaler = _resolve_model(model, scaler)
    trainer = Trainer(resolved_model, scaler=resolved_scaler, include_load=include_load)
    return trainer.evaluate(_resolve_samples(samples), batch_size=batch_size)


def predict(
    model: RouteNet | str | Path,
    samples: Sequence[Sample] | Sample | str | Path,
    *,
    scaler: FeatureScaler | None = None,
    include_load: bool = False,
    batch_size: int | None = None,
    config: ServeConfig | None = None,
    engine: InferenceEngine | None = None,
) -> PredictResult | list[PredictResult]:
    """Per-path KPI predictions, batched through the inference engine.

    Args:
        samples: One sample, a list of samples, or an archive path.
        config: Typed serving knobs (:class:`~repro.serving.ServeConfig`);
            the preferred way to configure batching/caching.  The
            ``include_load`` / ``batch_size`` keywords are conveniences
            folded into a default config and may not be combined with an
            explicit one.
        engine: Reuse an existing engine (keeps its caches and stats warm);
            built from ``model``/``scaler`` when omitted.

    Returns:
        One :class:`PredictResult` when a single sample was passed, else a
        list aligned with the input order.
    """
    if config is not None and (include_load or batch_size is not None):
        raise ModelError(
            "pass either config=ServeConfig(...) or the include_load/"
            "batch_size conveniences, not both"
        )
    single = isinstance(samples, Sample)
    sample_list = _resolve_samples(samples)
    if engine is None:
        if config is None:
            config = ServeConfig(
                include_load=include_load,
                max_batch=batch_size if batch_size is not None else 32,
            )
        resolved_model, resolved_scaler = _resolve_model(model, scaler)
        engine = InferenceEngine(resolved_model, resolved_scaler, config)
    results = engine.predict_many(sample_list, batch_size=batch_size)
    return results[0] if single else results


def simulate(
    topology: Topology | str,
    num_samples: int = 16,
    *,
    seed: int = 0,
    config: GenerationConfig | None = None,
    output: str | Path | None = None,
    workers: int = 1,
    runner: "RunnerConfig | None" = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    progress: "Callable[[ProgressEvent], None] | None" = None,
) -> list[Sample]:
    """Simulate ``num_samples`` labeled scenarios on ``topology``.

    Each scenario draws a random routing scheme and traffic matrix and runs
    the packet-level simulator for ground-truth delay/jitter/loss labels.
    Generation runs through the resilient :mod:`repro.runner` pool: results
    are bitwise identical for any ``workers`` count, failed scenarios are
    retried with fresh deterministic seeds, and a ``checkpoint_dir`` makes
    interrupted runs resumable without redoing completed scenarios.

    Args:
        topology: A :class:`Topology` or a name spec (``"nsfnet"``,
            ``"synthetic:24:3"``, ...).
        output: When given, the samples are also written to this JSONL path.
        workers: Parallel simulation worker processes.
        runner: Pool policy override (start method, timeout, retry budget).
        checkpoint_dir: Shard/manifest directory for resumable runs.
        resume: Reuse completed shards found in ``checkpoint_dir``.
        progress: Callback receiving :class:`~repro.runner.ProgressEvent`
            notifications per scenario start/completion/retry.
    """
    run = generate_dataset_run(
        _resolve_topology(topology), num_samples, seed=seed, config=config,
        workers=workers, runner=runner, checkpoint_dir=checkpoint_dir,
        resume=resume, on_event=progress,
    )
    if output is not None:
        save_dataset(run.samples, output)
    return run.samples
