"""Command-line interface: ``python -m repro <subcommand>``."""

from .main import main, build_parser

__all__ = ["main", "build_parser"]
