"""CLI subcommand implementations.

Every command prints human-readable output and returns an exit code; domain
errors (:class:`repro.errors.ReproError`) are reported on one line instead
of a traceback.
"""

from __future__ import annotations

import argparse
import functools

import numpy as np

from .. import api
from ..core import HyperParams, RouteNet
from ..dataset import (
    GenerationConfig,
    StreamDataset,
    convert_jsonl,
    generate_dataset_run,
    load_dataset,
    save_dataset,
    write_stream_dataset,
)
from ..errors import ReproError
from ..runner import ProgressEvent, RunnerConfig
from ..evaluation import cdf_table, compute_error_cdf, format_top_paths, top_n_paths
from ..experiments import PAPER_SMALL, SMOKE, Workbench
from ..serving import InferenceEngine, ServeConfig, ServingService, run_open_loop
from ..topology import TOPOLOGY_LIBRARY, by_name, synthetic_topology

__all__ = [
    "cmd_topologies",
    "cmd_generate",
    "cmd_train",
    "cmd_evaluate",
    "cmd_predict",
    "cmd_serve_bench",
    "cmd_info",
    "cmd_optimize",
    "cmd_whatif",
    "cmd_figures",
    "cmd_dataset_convert",
    "cmd_dataset_verify",
]


def _handle_errors(fn):
    """Turn ReproError/OSError into a one-line message + exit code 1."""

    @functools.wraps(fn)
    def wrapper(args: argparse.Namespace) -> int:
        try:
            return fn(args)
        except (ReproError, OSError, KeyError, ValueError) as exc:
            print(f"error: {exc}")
            return 1

    return wrapper


def _resolve_topology(spec: str):
    """'nsfnet' | 'geant2' | 'gbn' | 'synthetic:<nodes>[:<seed>]'."""
    if spec.startswith("synthetic:"):
        parts = spec.split(":")
        nodes = int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
        return synthetic_topology(nodes, seed=seed)
    return by_name(spec)


@_handle_errors
def cmd_topologies(args: argparse.Namespace) -> int:
    print(f"{'name':<10s} {'nodes':>6s} {'links':>6s} {'diameter-ish':>13s}")
    for name in sorted(TOPOLOGY_LIBRARY):
        topo = by_name(name)
        from ..routing import RoutingScheme

        max_hops = RoutingScheme.shortest_path(topo).max_path_length()
        print(f"{name:<10s} {topo.num_nodes:>6d} {topo.num_links:>6d} {max_hops:>13d}")
    print("\nplus: synthetic:<nodes>[:<seed>] for generated topologies")
    return 0


def _progress_printer(quiet: bool):
    """Per-scenario progress sink for the generation runner."""
    if quiet:
        return None

    def on_event(event: ProgressEvent) -> None:
        if event.kind == "done":
            print(
                f"  [{event.completed}/{event.total}] scenario {event.index} "
                f"done in {event.elapsed:.1f}s"
            )
        elif event.kind == "retry":
            print(
                f"  [retry] scenario {event.index} attempt {event.attempt} "
                f"failed ({event.message}); retrying with a fresh seed"
            )
        elif event.kind == "failed":
            print(
                f"  [failed] scenario {event.index} exhausted retries "
                f"({event.message})"
            )

    return on_event


@_handle_errors
def cmd_generate(args: argparse.Namespace) -> int:
    topology = _resolve_topology(args.topology)
    config = GenerationConfig(
        intensity_range=tuple(args.intensity),
        arrivals=args.arrivals,
        target_packets_per_pair=args.packets_per_pair,
        active_fraction=args.active_fraction,
    )
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.resume:
        checkpoint_dir = f"{args.output}.ckpt"
    runner_cfg = RunnerConfig(
        task_timeout=args.task_timeout, max_retries=args.retries
    )
    print(
        f"simulating {args.num_samples} scenarios on {topology.name} "
        f"({args.arrivals} arrivals, {args.workers} worker(s)"
        + (f", resuming from {checkpoint_dir}" if args.resume else "")
        + ") ..."
    )
    run = generate_dataset_run(
        topology, args.num_samples, seed=args.seed, config=config,
        workers=args.workers, runner=runner_cfg,
        checkpoint_dir=checkpoint_dir, resume=args.resume,
        on_event=_progress_printer(args.quiet),
    )
    count = save_dataset(run.samples, args.output)
    pairs = sum(s.num_pairs for s in run.samples)
    print(f"wrote {count} samples ({pairs} labeled paths) to {args.output}")
    if args.dataset_dir is not None:
        write_stream_dataset(
            run.samples, args.dataset_dir,
            fingerprint={
                "kind": "generation",
                "topology": topology.name,
                "num_samples": args.num_samples,
                "seed": args.seed,
            },
            overwrite=args.overwrite_dataset_dir,
        )
        print(f"wrote stream dataset ({count} records) to {args.dataset_dir}")
    print(run.metrics.summary())
    return 0


@_handle_errors
def cmd_dataset_convert(args: argparse.Namespace) -> int:
    count = convert_jsonl(
        args.input, args.output,
        samples_per_shard=args.samples_per_shard,
        overwrite=args.overwrite,
    )
    ds = StreamDataset(args.output)
    print(
        f"converted {count} samples from {len(args.input)} archive(s) into "
        f"{ds.num_shards} shard(s) at {args.output}"
    )
    ds.close()
    return 0


@_handle_errors
def cmd_dataset_verify(args: argparse.Namespace) -> int:
    ds = StreamDataset(args.directory)
    try:
        ds.verify()
        print(
            f"ok: {len(ds)} records across {ds.num_shards} shard(s) "
            f"(all CRCs match the manifest)"
        )
    finally:
        ds.close()
    return 0


def _load_many(paths: list[str]):
    samples = []
    for path in paths:
        samples.extend(load_dataset(path))
    return samples


@_handle_errors
def cmd_train(args: argparse.Namespace) -> int:
    if (args.dataset is None) == (args.dataset_dir is None):
        print("error: pass exactly one of -d/--dataset or --dataset-dir")
        return 1
    if args.dataset_dir is not None:
        samples = StreamDataset(args.dataset_dir)
        print(
            f"streaming {len(samples)} training samples from "
            f"{samples.num_shards} shard(s) in {args.dataset_dir}"
        )
    else:
        samples = _load_many(args.dataset)
        print(
            f"loaded {len(samples)} training samples from "
            f"{len(args.dataset)} archive(s)"
        )
    hp = HyperParams(
        link_state_dim=args.state_dim,
        path_state_dim=args.state_dim,
        message_passing_steps=args.steps,
        learning_rate=args.learning_rate,
    )
    log = (lambda _msg: None) if args.quiet else print
    result = api.train(
        samples,
        epochs=args.epochs,
        hparams=hp,
        seed=args.seed,
        eval_samples=args.eval_dataset,
        checkpoint=args.output,
        log=log,
        sanitize=args.sanitize,
        batch_size=args.batch_size,
        workers=args.workers,
        micro_batch=args.micro_batch,
        prefetch=args.prefetch,
    )
    print(f"wrote checkpoint {args.output} "
          f"(final loss {result.final_train_loss:.4f})")
    return 0


@_handle_errors
def cmd_evaluate(args: argparse.Namespace) -> int:
    samples = _load_many(args.dataset)
    metrics = api.evaluate(args.model, samples)
    print(f"evaluated {len(samples)} samples "
          f"({int(metrics.delay.count)} paths)")
    for target, stats in zip(metrics.targets(), (metrics.delay, metrics.jitter)):
        print(
            f"  {target:<7s} MRE {stats.mre:.3f}   MedRE {stats.medre:.3f}   "
            f"R2 {stats.r2:.3f}   Pearson {stats.pearson:.3f}"
        )
    if args.cdf:
        predictions = api.predict(args.model, samples)
        cdf = compute_error_cdf(
            np.concatenate([p.delay for p in predictions]),
            np.concatenate([s.delay for s in samples]),
            label="delay",
        )
        print()
        print(cdf_table([cdf]))
    return 0


def _predict_batched(args: argparse.Namespace, samples) -> int:
    """The ``predict --batch N`` path: serve every sample in fused batches."""
    model, scaler, _meta = RouteNet.load(args.model)
    engine = InferenceEngine(model, scaler, ServeConfig(max_batch=args.batch))
    predictions = engine.predict_many(samples)
    stats = engine.stats()
    print(
        f"served {stats['queries']} samples ({stats['paths']} paths) in "
        f"{stats['batches']} fused batches of <= {args.batch}"
    )
    for index, (sample, pred) in enumerate(zip(samples, predictions)):
        worst = int(np.argmax(pred.delay))
        print(
            f"  sample {index:3d}  {sample.topology.name:<10s} "
            f"{pred.num_paths:4d} paths   mean {pred.delay.mean() * 1000:7.2f} ms   "
            f"worst {sample.pairs[worst][0]}->{sample.pairs[worst][1]} "
            f"{pred.delay[worst] * 1000:.2f} ms"
        )
    throughput = stats["paths"] / stats["total_s"] if stats["total_s"] > 0 else 0.0
    print(f"\nper-stage timings ({throughput:,.0f} paths/s):")
    print(InferenceEngine.format_stats(stats))
    return 0


@_handle_errors
def cmd_predict(args: argparse.Namespace) -> int:
    samples = load_dataset(args.dataset)
    if args.batch is not None:
        if args.batch < 1:
            print(f"error: --batch must be >= 1, got {args.batch}")
            return 1
        return _predict_batched(args, samples)
    if not 0 <= args.sample < len(samples):
        print(f"error: sample index {args.sample} outside [0, {len(samples)})")
        return 1
    sample = samples[args.sample]
    pred = api.predict(args.model, sample)
    print(
        f"sample {args.sample}: topology={sample.topology.name}, "
        f"routing={sample.routing.name}, {sample.num_pairs} paths"
    )
    rows = top_n_paths(sample.pairs, pred.delay, n=args.top,
                       true_delay=sample.delay)
    print(format_top_paths(rows))
    return 0


@_handle_errors
def cmd_serve_bench(args: argparse.Namespace) -> int:
    """Drive the request-queue service with open-loop Poisson load."""
    model, scaler, _meta = RouteNet.load(args.model)
    samples = load_dataset(args.dataset)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        deadline_ms=args.deadline_ms,
        queue_depth=args.queue_depth,
        workers=args.workers,
        prediction_cache_size=args.prediction_cache,
    )
    print(
        f"serving {len(samples)} distinct samples  "
        f"(workers {config.workers}, max_batch {config.max_batch}, "
        f"window {config.max_wait_ms} ms, queue {config.queue_depth})"
    )
    for rate in args.rps:
        service = ServingService(model, scaler, config)
        try:
            report = run_open_loop(
                service,
                samples,
                rate_rps=rate,
                num_requests=max(1, int(round(rate * args.duration))),
                seed=args.seed,
            )
        finally:
            service.close()
        stats = service.stats()
        pred_cache = stats["prediction_cache"]
        hits = pred_cache["hits"] if pred_cache else 0
        print(
            f"  offered {report.offered_rps:8.1f} rps   "
            f"achieved {report.achieved_rps:8.1f} rps   "
            f"p50 {report.p50_ms:7.2f} ms   p99 {report.p99_ms:7.2f} ms   "
            f"rejected {report.rejected}   expired {report.expired}   "
            f"batches {stats['engine']['batches']}   cache hits {hits}"
        )
    return 0


def _load_model_and_sample(args: argparse.Namespace):
    model, scaler, _meta = RouteNet.load(args.model)
    samples = load_dataset(args.dataset)
    if not 0 <= args.sample < len(samples):
        raise ValueError(f"sample index {args.sample} outside [0, {len(samples)})")
    return model, scaler, samples[args.sample]


@_handle_errors
def cmd_optimize(args: argparse.Namespace) -> int:
    from ..planning import optimize_routing

    model, scaler, sample = _load_model_and_sample(args)
    result = optimize_routing(
        model, scaler, sample.topology, sample.traffic,
        num_candidates=args.candidates, objective=args.objective, seed=args.seed,
    )
    print(
        f"scenario: {sample.topology.name}, objective={args.objective}, "
        f"{args.candidates} candidates"
    )
    for score in result.scores:
        marker = "  <- picked" if score.index == result.best.index else ""
        print(
            f"  {score.name:<22s} {args.objective} delay "
            f"{score.score * 1000:8.1f} ms{marker}"
        )
    return 0


@_handle_errors
def cmd_whatif(args: argparse.Namespace) -> int:
    from ..planning import link_failure_whatif, traffic_scaling_whatif

    model, scaler, sample = _load_model_and_sample(args)
    print(f"scenario: {sample.topology.name}, routing={sample.routing.name}")

    results = traffic_scaling_whatif(
        model, scaler, sample.topology, sample.routing, sample.traffic,
        factors=tuple(args.scale),
    )
    for result in results:
        pair, worst = result.worst_pair()
        print(
            f"  {result.label}: mean {result.mean_delay() * 1000:8.1f} ms"
            f"   worst {pair[0]}->{pair[1]} {worst * 1000:.1f} ms"
        )

    if args.fail_link:
        u, v = args.fail_link
        before, after = link_failure_whatif(
            model, scaler, sample.topology, sample.traffic, (u, v)
        )
        print(
            f"  fail {u}<->{v}: mean {before.mean_delay() * 1000:.1f} ms -> "
            f"{after.mean_delay() * 1000:.1f} ms"
        )
    return 0


@_handle_errors
def cmd_info(args: argparse.Namespace) -> int:
    from ..dataset import format_summary, summarize_dataset

    samples = _load_many(args.dataset)
    print(format_summary(summarize_dataset(samples)))
    return 0


@_handle_errors
def cmd_figures(args: argparse.Namespace) -> int:
    from ..experiments import (
        baseline_comparison,
        fig2_regression,
        fig3_error_cdfs,
        fig4_top_paths,
        generalization_matrix,
    )

    profile = SMOKE if args.profile == "smoke" else PAPER_SMALL
    wb = Workbench(profile, cache_dir=args.cache)
    wb.trained_model()

    print("\n-- fig2: regression on unseen geant2 --")
    data = fig2_regression(wb)
    print(f"slope {data.slope_through_origin():.3f}   "
          f"R2 {data.summary()['r2']:.3f}   MRE {data.summary()['mre']:.3f}")

    print("\n-- fig3: relative-error CDFs --")
    print(cdf_table(fig3_error_cdfs(wb)))

    print("\n-- fig4: top-10 paths --")
    result = fig4_top_paths(wb)
    print(format_top_paths(result.rows))

    print("\n-- generalization matrix (delay MRE) --")
    for label, stats in generalization_matrix(wb).items():
        print(f"  {label:<14s} {stats['mre']:.3f}")

    print("\n-- baselines (delay MRE) --")
    for label, row in baseline_comparison(wb).items():
        mlp = row["mlp-fixed"]
        mlp_text = f"{mlp['mre']:.3f}" if isinstance(mlp, dict) else mlp
        print(f"  {label:<24s} routenet {row['routenet']['mre']:.3f}   "
              f"queueing {row['queueing-theory']['mre']:.3f}   mlp {mlp_text}")
    return 0
