"""CLI argument parsing and dispatch.

Subcommands mirror the library's workflow::

    python -m repro topologies                      # list reference networks
    python -m repro generate --topology nsfnet -n 16 -o data.jsonl
    python -m repro dataset convert -i data.jsonl -o data.stream
    python -m repro train -d data.jsonl -o model.npz --epochs 20
    python -m repro train --dataset-dir data.stream --prefetch 1 -o model.npz
    python -m repro evaluate -m model.npz -d eval.jsonl
    python -m repro predict -m model.npz -d eval.jsonl --sample 0 --top 10
    python -m repro predict -m model.npz -d eval.jsonl --batch 32
    python -m repro serve-bench -m model.npz -d eval.jsonl --rps 100 400
    python -m repro figures --profile smoke --cache /tmp/cache

Each subcommand is implemented in :mod:`repro.cli.commands`; this module
owns only the parser wiring so it stays testable.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from .. import __version__
from . import commands

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RouteNet network-modeling reproduction: dataset generation, "
            "training, evaluation and paper figures."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topologies", help="list the reference topologies")
    topo.set_defaults(func=commands.cmd_topologies)

    gen = sub.add_parser("generate", help="simulate a dataset to a JSONL archive")
    gen.add_argument("--topology", default="nsfnet",
                     help="nsfnet | geant2 | gbn | synthetic:<nodes>")
    gen.add_argument("-n", "--num-samples", type=int, default=16)
    gen.add_argument("-o", "--output", required=True, help="output .jsonl path")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--intensity", type=float, nargs=2, default=(0.3, 0.9),
                     metavar=("LO", "HI"), help="bottleneck utilization range")
    gen.add_argument("--arrivals", default="poisson",
                     choices=("poisson", "onoff", "deterministic"))
    gen.add_argument("--packets-per-pair", type=float, default=120.0,
                     help="target simulated packets per traffic pair")
    gen.add_argument("--active-fraction", type=float, default=1.0,
                     help="fraction of pairs with nonzero demand")
    gen.add_argument("--workers", type=int, default=1,
                     help="parallel simulation processes (results are "
                          "bitwise identical to --workers 1)")
    gen.add_argument("--checkpoint-dir",
                     help="shard/manifest directory for resumable runs "
                          "(default: <output>.ckpt when --resume is given)")
    gen.add_argument("--resume", action="store_true",
                     help="reuse completed scenarios from the checkpoint "
                          "directory instead of regenerating them")
    gen.add_argument("--task-timeout", type=float, metavar="SECONDS",
                     help="terminate and retry any scenario exceeding this")
    gen.add_argument("--retries", type=int, default=2,
                     help="extra attempts (fresh deterministic seeds) per "
                          "failed scenario")
    gen.add_argument("--quiet", action="store_true",
                     help="suppress per-scenario progress lines")
    gen.add_argument("--dataset-dir", metavar="DIR",
                     help="also write the samples as a binary stream dataset "
                          "(memory-mapped shards trainable via "
                          "'train --dataset-dir')")
    gen.add_argument("--overwrite-dataset-dir", action="store_true",
                     help="replace an existing stream dataset at "
                          "--dataset-dir")
    gen.set_defaults(func=commands.cmd_generate)

    ds = sub.add_parser("dataset", help="stream-dataset management")
    ds_sub = ds.add_subparsers(dest="dataset_command", required=True)
    conv = ds_sub.add_parser(
        "convert",
        help="convert JSONL archives into the binary stream format",
    )
    conv.add_argument("-i", "--input", action="append", required=True,
                      help="source .jsonl archive (repeatable; record order "
                           "is the concatenation order)")
    conv.add_argument("-o", "--output", required=True,
                      help="output stream-dataset directory")
    conv.add_argument("--samples-per-shard", type=int, default=512,
                      help="records per shard file")
    conv.add_argument("--overwrite", action="store_true",
                      help="replace an existing dataset at the output path")
    conv.set_defaults(func=commands.cmd_dataset_convert)
    verify = ds_sub.add_parser(
        "verify",
        help="check every shard's CRC against the dataset manifest",
    )
    verify.add_argument("directory", help="stream-dataset directory")
    verify.set_defaults(func=commands.cmd_dataset_verify)

    train = sub.add_parser("train", help="train RouteNet on JSONL datasets")
    train.add_argument("-d", "--dataset", action="append",
                       help="training archive (repeatable; or use "
                            "--dataset-dir)")
    train.add_argument("--dataset-dir", metavar="DIR",
                       help="converted stream-dataset directory (see "
                            "'repro dataset convert'); samples are served "
                            "off memory-mapped shards instead of loaded "
                            "into RAM")
    train.add_argument("-o", "--output", required=True, help="checkpoint .npz path")
    train.add_argument("--epochs", type=int, default=20)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--learning-rate", type=float, default=2e-3)
    train.add_argument("--state-dim", type=int, default=16)
    train.add_argument("--steps", type=int, default=4,
                       help="message-passing iterations (T)")
    train.add_argument("--eval-dataset", help="optional archive for per-epoch eval")
    train.add_argument("--batch-size", type=int, default=1, metavar="B",
                       help="samples fused per optimization step (1 = the "
                            "historical per-sample loop; >1 packs B samples "
                            "into one forward+backward)")
    train.add_argument("--workers", type=int, default=None, metavar="N",
                       help="data-parallel gradient worker processes; any N "
                            "yields bitwise-identical parameters to "
                            "--workers 1 (omit for the single-process path)")
    train.add_argument("--micro-batch", type=int, default=None, metavar="M",
                       help="shard size of the data-parallel batch partition "
                            "(requires --workers; default: up to 4 shards "
                            "per batch)")
    train.add_argument("--prefetch", type=int, default=None, metavar="N",
                       help="pack each step's batch in N background "
                            "processes one step ahead of the optimizer "
                            "(bitwise identical to in-process preparation; "
                            "mutually exclusive with --workers)")
    train.add_argument("--sanitize", action="store_true",
                       help="run each step under the tape sanitizer: a "
                            "divergence names the first op producing NaN/Inf")
    train.add_argument("--quiet", action="store_true")
    train.set_defaults(func=commands.cmd_train)

    ev = sub.add_parser("evaluate", help="evaluate a checkpoint on a dataset")
    ev.add_argument("-m", "--model", required=True, help="checkpoint .npz path")
    ev.add_argument("-d", "--dataset", action="append", required=True,
                    help="evaluation archive (repeatable)")
    ev.add_argument("--cdf", action="store_true",
                    help="also print the relative-error CDF table")
    ev.set_defaults(func=commands.cmd_evaluate)

    pred = sub.add_parser("predict", help="per-path predictions for one sample")
    pred.add_argument("-m", "--model", required=True)
    pred.add_argument("-d", "--dataset", required=True)
    pred.add_argument("--sample", type=int, default=0, help="sample index")
    pred.add_argument("--top", type=int, default=10,
                      help="print the Top-N paths by predicted delay")
    pred.add_argument("--batch", type=int, metavar="N",
                      help="serve ALL samples through the batched inference "
                           "engine (fused batches of N) and report per-stage "
                           "timings instead of one sample's Top-N paths")
    pred.set_defaults(func=commands.cmd_predict)

    serve = sub.add_parser(
        "serve-bench",
        help="drive the request-queue service with open-loop Poisson load",
    )
    serve.add_argument("-m", "--model", required=True, help="checkpoint .npz path")
    serve.add_argument("-d", "--dataset", required=True,
                       help="archive providing the query pool")
    serve.add_argument("--rps", type=float, nargs="+", default=(100.0,),
                       metavar="RATE", help="offered load points (requests/s)")
    serve.add_argument("--duration", type=float, default=2.0,
                       help="seconds of load offered per rate point")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="queries fused per forward call")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="batch coalescing window in milliseconds")
    serve.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline (default: none)")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="bounded queue size (requests beyond it are "
                            "rejected, not blocked)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker shards (requests route by topology)")
    serve.add_argument("--prediction-cache", type=int, default=2048,
                       metavar="N", help="prediction-cache entries (0 disables)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the Poisson arrival schedule")
    serve.set_defaults(func=commands.cmd_serve_bench)

    opt = sub.add_parser("optimize", help="pick the best routing for a scenario")
    opt.add_argument("-m", "--model", required=True)
    opt.add_argument("-d", "--dataset", required=True)
    opt.add_argument("--sample", type=int, default=0)
    opt.add_argument("--candidates", type=int, default=6)
    opt.add_argument("--objective", default="mean", choices=("mean", "worst", "p90"))
    opt.add_argument("--seed", type=int, default=0)
    opt.set_defaults(func=commands.cmd_optimize)

    what = sub.add_parser("whatif", help="traffic-growth and link-failure studies")
    what.add_argument("-m", "--model", required=True)
    what.add_argument("-d", "--dataset", required=True)
    what.add_argument("--sample", type=int, default=0)
    what.add_argument("--scale", type=float, nargs="+", default=(1.0, 1.2, 1.5),
                      help="traffic scaling factors to evaluate")
    what.add_argument("--fail-link", type=int, nargs=2, metavar=("U", "V"),
                      help="also evaluate failing the undirected edge U<->V")
    what.set_defaults(func=commands.cmd_whatif)

    info = sub.add_parser("info", help="summarize a dataset archive")
    info.add_argument("-d", "--dataset", action="append", required=True,
                      help="archive to summarize (repeatable)")
    info.set_defaults(func=commands.cmd_info)

    fig = sub.add_parser("figures", help="reproduce the paper's figures")
    fig.add_argument("--profile", default="paper-small",
                     choices=("paper-small", "smoke"))
    fig.add_argument("--cache", default="data", help="artifact cache directory")
    fig.set_defaults(func=commands.cmd_figures)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` and run the selected subcommand.

    Returns a process exit code (0 success, 1 domain error).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
