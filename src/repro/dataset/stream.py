"""Streaming on-disk dataset pipeline: mmap shards, samplers, prefetch.

The paper trains on 480k samples; loading them eagerly (``load_dataset``)
needs RAM proportional to the dataset.  This module keeps RAM flat at any
dataset size with three pieces:

1. **Shard format** — :class:`ShardWriter` / :class:`ShardReader`.  A
   dataset directory holds a ``manifest.json`` (same header conventions as
   the runner's :class:`~repro.runner.manifest.CheckpointStore`: format
   version, normalized fingerprint, record count) plus binary shards under
   ``shards/``.  Each shard is one columnar record blob with a trailing
   offset index::

       [0:32)    header: magic ``RPSHRD01`` | u32 version | u32 flags
                 | u64 num_records | u64 index_offset
       [64:...)  records, each 64-byte aligned
       [index)   num_records x (u64 offset, u64 nbytes)

   A record is ``u32 header_len | JSON header | pad to 64 | array blobs``.
   The JSON header names the topology/routing and carries an array table
   ``{name: {dtype, shape, offset, nbytes}}`` with offsets relative to the
   record's (aligned) data origin, so every array field is readable as a
   zero-copy ``np.memmap`` view.  Label arrays (delay/jitter/loss) flow
   into :class:`~repro.dataset.sample.Sample` as those views — reading a
   shard touches only the pages it decodes.

2. **Samplers** — :class:`ItemSampler` / :class:`MinibatchSampler`.
   Deterministic epoch orders that are a pure function of ``(seed, epoch)``
   (worker-count independent by construction), with a resumable
   ``state_dict`` cursor.  A second *trajectory mode* threads an external
   ``numpy`` Generator through the same in-place shuffle the trainer's
   historical loop performed, so ``Trainer.fit`` over a streaming source
   consumes its RNG bit-for-bit like the eager-list path.

3. **Prefetch** — :class:`PrefetchLoader`.  A background process (the
   spawn-safe :class:`~repro.runner.persistent.PersistentPool`, so RP2xx
   proofs and crash-respawn-and-resubmit apply) materializes the *next*
   batch's samples, packs them (``serving.batching`` prepare/fuse + the
   :func:`~repro.core.plan.build_plan` scatter schedules) while the current
   train step executes, and hands pre-packed ``(ModelInput, targets)``
   through a bounded queue — the trainer's ``prepare`` stage becomes a
   queue pop.
"""

from __future__ import annotations

import json
import queue
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..core.plan import ForwardPlan, adopt_plan, build_plan
from ..errors import DatasetError, DatasetFormatError
from ..random import make_rng
from ..routing import RoutingScheme
from ..runner.manifest import load_manifest, validate_manifest, write_manifest
from ..runner.persistent import PersistentPool
from ..serving.batching import fuse_training_batch, prepare_training_input
from ..topology import Link, Topology
from ..traffic import TrafficMatrix
from .sample import Sample

__all__ = [
    "ItemSampler",
    "MinibatchSampler",
    "PrefetchLoader",
    "ShardReader",
    "ShardWriter",
    "StreamDataset",
    "convert_jsonl",
    "write_stream_dataset",
]

_MAGIC = b"RPSHRD01"
_SHARD_VERSION = 1
_MANIFEST_VERSION = 1
_MANIFEST_KIND = "stream_dataset"
#: magic | u32 version | u32 flags | u64 num_records | u64 index_offset
_SHARD_HEADER = struct.Struct("<8sIIQQ")
#: Records (and each record's data origin) are aligned to this boundary so
#: memmap views of f8/i8 columns land on naturally aligned addresses.
_ALIGN = 64
#: Records begin here; bytes [32, 64) of the file are reserved (zero).
_RECORDS_START = 64


def _align(n: int, boundary: int = _ALIGN) -> int:
    return (n + boundary - 1) // boundary * boundary


# ----------------------------------------------------------------------
# Record encoding / decoding
# ----------------------------------------------------------------------

def _record_arrays(sample: Sample) -> list[tuple[str, np.ndarray]]:
    """Columnar little-endian arrays fully describing one sample."""
    topo = sample.topology
    num_links = len(topo.links)
    link_ends = np.asarray(
        [[l.src, l.dst] for l in topo.links], dtype="<i4"
    ).reshape(num_links, 2)
    link_capacity = np.asarray([l.capacity for l in topo.links], dtype="<f8")
    link_prop = np.asarray([l.propagation_delay for l in topo.links], dtype="<f8")

    routes = list(sample.routing.items())  # sorted by pair: deterministic
    route_pairs = np.asarray([p for p, _ in routes], dtype="<i4").reshape(
        len(routes), 2
    )
    route_offsets = np.zeros(len(routes) + 1, dtype="<i8")
    if routes:
        np.cumsum([len(nodes) for _, nodes in routes], out=route_offsets[1:])
    route_nodes = np.asarray(
        [n for _, nodes in routes for n in nodes], dtype="<i4"
    )

    src, dst = np.nonzero(sample.traffic.rates)
    traffic_pairs = np.stack([src, dst], axis=1).astype("<i4")
    traffic_rates = np.ascontiguousarray(sample.traffic.rates[src, dst], dtype="<f8")

    pairs = np.asarray(sample.pairs, dtype="<i4").reshape(len(sample.pairs), 2)
    arrays = [
        ("link_ends", link_ends),
        ("link_capacity", link_capacity),
        ("link_prop_delay", link_prop),
        ("route_pairs", route_pairs),
        ("route_offsets", route_offsets),
        ("route_nodes", route_nodes),
        ("traffic_pairs", traffic_pairs),
        ("traffic_rates", traffic_rates),
        ("pairs", pairs),
        ("delay", np.ascontiguousarray(sample.delay, dtype="<f8")),
        ("jitter", np.ascontiguousarray(sample.jitter, dtype="<f8")),
        ("loss_rate", np.ascontiguousarray(sample.loss_rate, dtype="<f8")),
    ]
    if sample.pair_class is not None:
        arrays.append(("pair_class", np.ascontiguousarray(sample.pair_class, dtype="<i4")))
    return arrays


def _encode_record(sample: Sample) -> bytes:
    """One self-contained record: u32 header_len | JSON | pad | blobs."""
    arrays = _record_arrays(sample)
    table: dict[str, dict] = {}
    data_size = 0
    for name, arr in arrays:
        data_size = _align(data_size)
        table[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": data_size,
            "nbytes": int(arr.nbytes),
        }
        data_size += arr.nbytes
    header = {
        "topology_name": sample.topology.name,
        "num_nodes": sample.topology.num_nodes,
        "routing_name": sample.routing.name,
        "meta": sample.meta,
        "arrays": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_base = _align(4 + len(header_bytes))
    out = bytearray(data_base + data_size)
    struct.pack_into("<I", out, 0, len(header_bytes))
    out[4 : 4 + len(header_bytes)] = header_bytes
    for name, arr in arrays:
        start = data_base + table[name]["offset"]
        out[start : start + arr.nbytes] = arr.tobytes()
    return bytes(out)


def _record_views(
    buf: np.ndarray, offset: int, nbytes: int, *, path: Path, index: int
) -> tuple[dict, dict[str, np.ndarray]]:
    """Parse one record into its JSON header + zero-copy array views."""
    end = offset + nbytes
    if end > buf.size or nbytes < 4:
        raise DatasetFormatError(
            f"{path}: record {index} spans [{offset}, {end}) beyond shard "
            f"size {buf.size}",
            path=path,
            line=index,
        )
    (header_len,) = struct.unpack_from("<I", buf, offset)
    data_base = offset + _align(4 + header_len)
    if offset + 4 + header_len > end or data_base > end:
        raise DatasetFormatError(
            f"{path}: record {index} header overruns the record blob",
            path=path,
            line=index,
        )
    try:
        header = json.loads(bytes(buf[offset + 4 : offset + 4 + header_len]))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DatasetFormatError(
            f"{path}: record {index} has a corrupt header: {exc}",
            path=path,
            line=index,
        ) from exc
    views: dict[str, np.ndarray] = {}
    try:
        for name, spec in header["arrays"].items():
            start = data_base + spec["offset"]
            stop = start + spec["nbytes"]
            if stop > end:
                raise DatasetFormatError(
                    f"{path}: record {index} array {name!r} overruns the "
                    f"record blob",
                    path=path,
                    line=index,
                )
            views[name] = (
                buf[start:stop].view(np.dtype(spec["dtype"])).reshape(tuple(spec["shape"]))
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetFormatError(
            f"{path}: record {index} has a corrupt array table: {exc!r}",
            path=path,
            line=index,
        ) from exc
    return header, views


def _decode_record(
    buf: np.ndarray, offset: int, nbytes: int, *, path: Path, index: int
) -> Sample:
    """Materialize one :class:`Sample`; label arrays stay memmap views."""
    header, views = _record_views(buf, offset, nbytes, path=path, index=index)
    try:
        link_ends = views["link_ends"]
        caps = views["link_capacity"]
        props = views["link_prop_delay"]
        links = [
            Link(i, int(link_ends[i, 0]), int(link_ends[i, 1]), float(caps[i]), float(props[i]))
            for i in range(link_ends.shape[0])
        ]
        topology = Topology(int(header["num_nodes"]), links, name=header["topology_name"])
        route_pairs = views["route_pairs"]
        route_offsets = views["route_offsets"]
        node_list = views["route_nodes"].tolist()
        paths = {
            (int(route_pairs[j, 0]), int(route_pairs[j, 1])): node_list[
                int(route_offsets[j]) : int(route_offsets[j + 1])
            ]
            for j in range(route_pairs.shape[0])
        }
        routing = RoutingScheme(topology, paths, name=header["routing_name"])
        rates = np.zeros((topology.num_nodes, topology.num_nodes))
        traffic_pairs = views["traffic_pairs"]
        rates[traffic_pairs[:, 0], traffic_pairs[:, 1]] = views["traffic_rates"]
        pair_class = views.get("pair_class")
        return Sample(
            topology=topology,
            routing=routing,
            traffic=TrafficMatrix(rates),
            pairs=tuple((int(s), int(d)) for s, d in views["pairs"].tolist()),
            delay=views["delay"],
            jitter=views["jitter"],
            loss_rate=views["loss_rate"],
            pair_class=None if pair_class is None else np.asarray(pair_class, dtype=int),
            meta=header.get("meta", {}),
        )
    except DatasetError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise DatasetFormatError(
            f"{path}: record {index} is corrupt: {exc!r}", path=path, line=index
        ) from exc


# ----------------------------------------------------------------------
# Shard writer / reader
# ----------------------------------------------------------------------

class ShardWriter:
    """Write a streaming dataset directory (manifest + binary shards).

    Shards are written to a temp file and renamed whole on completion, so a
    killed conversion never leaves a half-written shard behind a valid
    manifest — the manifest itself is only written by :meth:`close`, making
    dataset publication atomic end-to-end.

    Args:
        directory: Dataset root; ``manifest.json`` and ``shards/`` go here.
        samples_per_shard: Records per shard file (the last may be short).
        fingerprint: Optional JSON-serializable identity of the generating
            run (same convention as :class:`~repro.runner.CheckpointStore`);
            validated on open by readers that pass one.
        overwrite: Replace an existing stream dataset in ``directory``
            instead of raising.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        samples_per_shard: int = 512,
        fingerprint: Any | None = None,
        overwrite: bool = False,
    ) -> None:
        if samples_per_shard < 1:
            raise DatasetError(
                f"samples_per_shard must be >= 1, got {samples_per_shard}"
            )
        self.directory = Path(directory)
        self.samples_per_shard = samples_per_shard
        self.fingerprint = fingerprint
        manifest_path = self.directory / "manifest.json"
        if manifest_path.exists():
            if not overwrite:
                raise DatasetError(
                    f"{self.directory} already holds a stream dataset "
                    "(pass overwrite=True to replace it)"
                )
            self._discard_existing()
        (self.directory / "shards").mkdir(parents=True, exist_ok=True)
        self._shards: list[dict] = []
        self._fh: Any = None
        self._tmp_path: Path | None = None
        self._offsets: list[tuple[int, int]] = []
        self._crc = 0
        self._total = 0
        self._closed = False

    def _discard_existing(self) -> None:
        (self.directory / "manifest.json").unlink(missing_ok=True)
        shards_dir = self.directory / "shards"
        if shards_dir.exists():
            for old in shards_dir.glob("shard-*.bin"):
                old.unlink(missing_ok=True)
            for old in shards_dir.glob("shard-*.bin.tmp"):
                old.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def _shard_name(self, index: int) -> str:
        return f"shard-{index:06d}.bin"

    def _start_shard(self) -> None:
        name = self._shard_name(len(self._shards))
        self._tmp_path = self.directory / "shards" / (name + ".tmp")
        self._fh = self._tmp_path.open("wb")
        self._fh.write(b"\x00" * _RECORDS_START)
        self._offsets = []
        self._crc = 0

    def _write(self, data: bytes) -> None:
        """Write body bytes, folding them into the shard's running CRC."""
        self._fh.write(data)
        self._crc = zlib.crc32(data, self._crc)

    def append(self, sample: Sample) -> int:
        """Append one sample; returns its global record index."""
        if self._closed:
            raise DatasetError("ShardWriter is closed")
        if self._fh is None:
            self._start_shard()
        pos = self._fh.tell()
        pad = _align(pos) - pos
        if pad:
            self._write(b"\x00" * pad)
        record = _encode_record(sample)
        self._offsets.append((self._fh.tell(), len(record)))
        self._write(record)
        index = self._total
        self._total += 1
        if len(self._offsets) >= self.samples_per_shard:
            self._finish_shard()
        return index

    def _finish_shard(self) -> None:
        pos = self._fh.tell()
        pad = _align(pos, 8) - pos
        if pad:
            self._write(b"\x00" * pad)
        index_offset = self._fh.tell()
        index = np.asarray(self._offsets, dtype="<u8").reshape(len(self._offsets), 2)
        self._write(index.tobytes())
        nbytes = self._fh.tell()
        self._fh.seek(0)
        self._fh.write(
            _SHARD_HEADER.pack(_MAGIC, _SHARD_VERSION, 0, len(self._offsets), index_offset)
        )
        self._fh.close()
        self._fh = None
        name = self._shard_name(len(self._shards))
        final = self.directory / "shards" / name
        self._tmp_path.replace(final)
        self._shards.append(
            {
                "file": f"shards/{name}",
                "records": len(self._offsets),
                "nbytes": nbytes,
                "crc32": self._crc,
            }
        )
        self._tmp_path = None
        self._offsets = []

    # ------------------------------------------------------------------
    def close(self) -> int:
        """Finish the open shard, publish the manifest; returns the count."""
        if self._closed:
            return self._total
        if self._fh is not None and self._offsets:
            self._finish_shard()
        elif self._fh is not None:
            self._fh.close()
            self._tmp_path.unlink(missing_ok=True)
            self._fh = None
        manifest = {
            "version": _MANIFEST_VERSION,
            "kind": _MANIFEST_KIND,
            "fingerprint": self.fingerprint,
            "num_tasks": self._total,
            "samples_per_shard": self.samples_per_shard,
            "shards": self._shards,
        }
        write_manifest(self.directory / "manifest.json", manifest)
        self._closed = True
        return self._total

    def abort(self) -> None:
        """Drop the in-flight shard without publishing a manifest."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._tmp_path is not None:
            self._tmp_path.unlink(missing_ok=True)
            self._tmp_path = None
        self._closed = True

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ShardReader:
    """Memory-mapped random access to one shard file's records."""

    def __init__(self, path: str | Path, *, expected_records: int | None = None) -> None:
        self.path = Path(path)
        try:
            self._buf = np.memmap(self.path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise DatasetError(f"cannot open shard {self.path}: {exc}") from exc
        if self._buf.size < _RECORDS_START:
            raise DatasetFormatError(
                f"{self.path}: truncated shard ({self._buf.size} bytes)", path=self.path
            )
        magic, version, _flags, num_records, index_offset = _SHARD_HEADER.unpack_from(
            self._buf, 0
        )
        if magic != _MAGIC:
            raise DatasetFormatError(
                f"{self.path}: not a repro shard (bad magic {magic!r})", path=self.path
            )
        if version != _SHARD_VERSION:
            raise DatasetFormatError(
                f"{self.path}: unsupported shard format version {version} "
                f"(this build reads version {_SHARD_VERSION})",
                path=self.path,
            )
        if expected_records is not None and num_records != expected_records:
            raise DatasetError(
                f"{self.path}: manifest promises {expected_records} records, "
                f"shard header says {num_records}"
            )
        index_end = index_offset + num_records * 16
        if index_end > self._buf.size:
            raise DatasetFormatError(
                f"{self.path}: record index overruns the file "
                f"({index_end} > {self._buf.size})",
                path=self.path,
            )
        self._index = (
            self._buf[index_offset : index_offset + num_records * 16]
            .view("<u8")
            .reshape(num_records, 2)
        )

    def __len__(self) -> int:
        return int(self._index.shape[0])

    def _span(self, i: int) -> tuple[int, int]:
        if not 0 <= i < len(self):
            raise IndexError(f"record {i} out of range [0, {len(self)})")
        offset, nbytes = self._index[i]
        return int(offset), int(nbytes)

    def sample(self, i: int) -> Sample:
        """Materialize record ``i`` as a :class:`Sample`."""
        offset, nbytes = self._span(i)
        return _decode_record(self._buf, offset, nbytes, path=self.path, index=i)

    def record(self, i: int) -> tuple[dict, dict[str, np.ndarray]]:
        """Record ``i`` as ``(json_header, zero-copy array views)``."""
        offset, nbytes = self._span(i)
        return _record_views(self._buf, offset, nbytes, path=self.path, index=i)

    def body_crc32(self) -> int:
        """CRC32 of everything after the 64-byte header (records + index)."""
        return zlib.crc32(self._buf[_RECORDS_START:])

    def close(self) -> None:
        self._buf = None
        self._index = None


# ----------------------------------------------------------------------
# Dataset directory
# ----------------------------------------------------------------------

class StreamDataset(Sequence[Sample]):
    """Sequence view over a stream dataset directory (lazy, flat-RAM).

    ``dataset[i]`` materializes one sample through a small LRU (decoded
    samples are cheap to rebuild; the arrays underneath are memmap views),
    so iterating any number of records keeps resident memory bounded by
    ``cache_samples`` plus the touched page cache.

    Instances pickle as their directory path — a spawn-started prefetch or
    gradient worker reopens its own memmaps rather than inheriting file
    handles across the process boundary.
    """

    def __init__(self, directory: str | Path, *, cache_samples: int = 64) -> None:
        self.directory = Path(directory)
        if cache_samples < 1:
            raise DatasetError(f"cache_samples must be >= 1, got {cache_samples}")
        self._cache_capacity = cache_samples
        manifest_path = self.directory / "manifest.json"
        if not manifest_path.exists():
            raise DatasetError(
                f"{self.directory} is not a stream dataset (no manifest.json); "
                "create one with `repro dataset convert` or ShardWriter"
            )
        manifest = load_manifest(manifest_path, error=DatasetError)
        validate_manifest(
            manifest,
            directory=self.directory,
            version=_MANIFEST_VERSION,
            kind=_MANIFEST_KIND,
            error=DatasetError,
        )
        self._manifest = manifest
        shards = manifest.get("shards")
        if not isinstance(shards, list):
            raise DatasetError(f"{manifest_path}: manifest has no shard list")
        self._shards = shards
        counts = [int(entry["records"]) for entry in shards]
        self._starts = [0]
        for c in counts:
            self._starts.append(self._starts[-1] + c)
        if self._starts[-1] != manifest.get("num_tasks"):
            raise DatasetError(
                f"{manifest_path}: shard records sum to {self._starts[-1]}, "
                f"manifest promises {manifest.get('num_tasks')}"
            )
        self._readers: list[ShardReader | None] = [None] * len(shards)
        self._cache: dict[int, Sample] = {}
        self._cache_order: list[int] = []

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> Any:
        return self._manifest.get("fingerprint")

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        return self._starts[-1]

    def _reader(self, shard_index: int) -> ShardReader:
        reader = self._readers[shard_index]
        if reader is None:
            entry = self._shards[shard_index]
            path = self.directory / entry["file"]
            if path.exists() and path.stat().st_size != int(entry["nbytes"]):
                raise DatasetError(
                    f"{path}: size {path.stat().st_size} does not match the "
                    f"manifest ({entry['nbytes']} bytes) — truncated shard?"
                )
            reader = ShardReader(path, expected_records=int(entry["records"]))
            self._readers[shard_index] = reader
        return reader

    def _locate(self, index: int) -> tuple[int, int]:
        lo, hi = 0, len(self._shards) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= index:
                lo = mid
            else:
                hi = mid - 1
        return lo, index - self._starts[lo]

    def materialize(self, index: int) -> Sample:
        """Decode record ``index`` (bypassing the LRU)."""
        if not 0 <= index < len(self):
            raise IndexError(f"sample {index} out of range [0, {len(self)})")
        shard, local = self._locate(index)
        return self._reader(shard).sample(local)

    def __getitem__(self, index):  # Sequence protocol: int or slice
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        sample = self.materialize(index)
        self._cache[index] = sample
        self._cache_order.append(index)
        while len(self._cache_order) > self._cache_capacity:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)
        return sample

    def __iter__(self) -> Iterator[Sample]:
        for i in range(len(self)):
            yield self[i]

    def record(self, index: int) -> tuple[dict, dict[str, np.ndarray]]:
        """Raw record access: ``(json_header, zero-copy array views)``."""
        if not 0 <= index < len(self):
            raise IndexError(f"record {index} out of range [0, {len(self)})")
        shard, local = self._locate(index)
        return self._reader(shard).record(local)

    def verify(self) -> None:
        """Check every shard's body CRC against the manifest.

        Raises:
            DatasetError: On any checksum or record-count mismatch.
        """
        for shard_index, entry in enumerate(self._shards):
            reader = self._reader(shard_index)
            expected = entry.get("crc32")
            actual = reader.body_crc32()
            if expected is not None and actual != expected:
                raise DatasetError(
                    f"{self.directory / entry['file']}: CRC mismatch "
                    f"(manifest {expected}, file {actual})"
                )

    def close(self) -> None:
        for reader in self._readers:
            if reader is not None:
                reader.close()
        self._readers = [None] * len(self._shards)
        self._cache = {}
        self._cache_order = []

    def __enter__(self) -> "StreamDataset":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- pickling: ship the path, reopen mmaps on the far side ----------
    def __getstate__(self) -> dict:
        return {
            "directory": str(self.directory),
            "cache_samples": self._cache_capacity,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["directory"], cache_samples=state["cache_samples"])

    def __repr__(self) -> str:
        return (
            f"StreamDataset({str(self.directory)!r}, samples={len(self)}, "
            f"shards={self.num_shards})"
        )


def write_stream_dataset(
    samples: Iterable[Sample],
    directory: str | Path,
    *,
    samples_per_shard: int = 512,
    fingerprint: Any | None = None,
    overwrite: bool = False,
) -> int:
    """Write an iterable of samples as a stream dataset; returns the count."""
    with ShardWriter(
        directory,
        samples_per_shard=samples_per_shard,
        fingerprint=fingerprint,
        overwrite=overwrite,
    ) as writer:
        for sample in samples:
            writer.append(sample)
    return writer.close()


def convert_jsonl(
    sources: Sequence[str | Path],
    directory: str | Path,
    *,
    samples_per_shard: int = 512,
    overwrite: bool = False,
) -> int:
    """Convert JSONL archives into one stream dataset directory.

    Record order follows the source order (archives concatenated), so a
    converted dataset reproduces ``load_dataset`` sample order exactly —
    the property the bitwise eager-vs-streaming training tests pin.
    """
    from .io import iter_dataset

    if not sources:
        raise DatasetError("need at least one source archive to convert")
    fingerprint = {"kind": "jsonl_conversion", "sources": [Path(s).name for s in sources]}
    with ShardWriter(
        directory,
        samples_per_shard=samples_per_shard,
        fingerprint=fingerprint,
        overwrite=overwrite,
    ) as writer:
        for source in sources:
            for sample in iter_dataset(source):
                writer.append(sample)
    return writer.close()


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------

class ItemSampler:
    """Deterministic, resumable item-order sampler (graphbolt-style).

    Two seeding modes:

    * **Seeded mode** (default): epoch ``e``'s order is a pure function of
      ``(seed, e)`` via :func:`~repro.random.make_rng`'s entropy-sequence
      seeding — independent of worker count, consumption pattern, or
      process restarts, which is what makes the cursor state below a
      complete resume token.
    * **Trajectory mode** (``epoch_order(rng=...)``): shuffles a persistent
      index array in place with the *caller's* generator, consuming it
      exactly like the trainer's historical epoch loop — ``Trainer.fit``
      uses this so streaming runs reproduce eager runs bitwise.

    State (``state_dict``/``load_state_dict``) is an ``(epoch, cursor)``
    pair: reloading on a fresh process and continuing yields the same
    index sequence the uninterrupted run would have produced.
    """

    def __init__(self, num_items: int, *, shuffle: bool = False, seed: int = 0) -> None:
        if num_items < 1:
            raise DatasetError(f"num_items must be >= 1, got {num_items}")
        self.num_items = num_items
        self.shuffle = shuffle
        self.seed = seed
        self._epoch = 0
        self._cursor = 0
        self._trajectory = np.arange(num_items)

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def cursor(self) -> int:
        return self._cursor

    def epoch_order(
        self, epoch: int | None = None, *, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """The full index order for one epoch.

        Args:
            epoch: Epoch to derive (seeded mode); defaults to the sampler's
                current epoch.
            rng: External generator (trajectory mode) — mutually exclusive
                with ``epoch``; shuffles the persistent index array in
                place, composing across epochs like the legacy train loop.
        """
        if rng is not None:
            if epoch is not None:
                raise DatasetError("pass either epoch= (seeded) or rng= (trajectory)")
            if self.shuffle:
                rng.shuffle(self._trajectory)
            return self._trajectory.copy()
        order = np.arange(self.num_items)
        if self.shuffle:
            make_rng((self.seed, self._epoch if epoch is None else epoch)).shuffle(order)
        return order

    def iter_epoch(self) -> Iterator[int]:
        """Yield the rest of the current epoch, advancing the cursor."""
        order = self.epoch_order(self._epoch)
        while self._cursor < self.num_items:
            index = int(order[self._cursor])
            self._cursor += 1
            yield index

    def next_epoch(self) -> None:
        self._epoch += 1
        self._cursor = 0

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "num_items": self.num_items,
            "shuffle": self.shuffle,
            "seed": self.seed,
            "epoch": self._epoch,
            "cursor": self._cursor,
        }

    def load_state_dict(self, state: dict) -> None:
        for field_name in ("num_items", "shuffle", "seed"):
            if state.get(field_name) != getattr(self, field_name):
                raise DatasetError(
                    f"sampler state mismatch on {field_name!r}: saved "
                    f"{state.get(field_name)!r}, this sampler has "
                    f"{getattr(self, field_name)!r}"
                )
        epoch, cursor = int(state["epoch"]), int(state["cursor"])
        if not 0 <= cursor <= self.num_items:
            raise DatasetError(f"cursor {cursor} out of range [0, {self.num_items}]")
        self._epoch = epoch
        self._cursor = cursor


class MinibatchSampler:
    """Deterministic minibatches: fixed partition, permuted visit order.

    Items are partitioned into consecutive ``batch_size`` chunks **once**
    (shuffle-invariant, so content-addressed caches of fused batches stay
    hot across epochs); each epoch permutes only the batch *visit order*
    through an internal :class:`ItemSampler` over batch indices.  With
    ``batch_size=1`` this degenerates to exactly the per-item shuffle of
    the historical training loop.
    """

    def __init__(
        self,
        num_items: int,
        batch_size: int,
        *,
        shuffle: bool = False,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if num_items < 1:
            raise DatasetError(f"num_items must be >= 1, got {num_items}")
        if batch_size < 1:
            raise DatasetError(f"batch_size must be >= 1, got {batch_size}")
        self.num_items = num_items
        self.batch_size = batch_size
        self.drop_last = drop_last
        stop = num_items - (num_items % batch_size) if drop_last else num_items
        self._batches: list[tuple[int, ...]] = [
            tuple(range(start, min(start + batch_size, num_items)))
            for start in range(0, stop, batch_size)
        ]
        if not self._batches:
            raise DatasetError(
                f"drop_last with batch_size {batch_size} leaves no batches "
                f"for {num_items} items"
            )
        self._order = ItemSampler(len(self._batches), shuffle=shuffle, seed=seed)

    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return len(self._batches)

    @property
    def epoch(self) -> int:
        return self._order.epoch

    def batch(self, j: int) -> tuple[int, ...]:
        return self._batches[j]

    def epoch_batches(
        self, epoch: int | None = None, *, rng: np.random.Generator | None = None
    ) -> list[tuple[int, ...]]:
        """All batches for one epoch in visit order (see :class:`ItemSampler`)."""
        return [self._batches[j] for j in self._order.epoch_order(epoch, rng=rng)]

    def iter_epoch(self) -> Iterator[tuple[int, ...]]:
        """Yield the rest of the current epoch's batches, advancing the cursor."""
        for j in self._order.iter_epoch():
            yield self._batches[j]

    def next_epoch(self) -> None:
        self._order.next_epoch()

    def state_dict(self) -> dict:
        state = self._order.state_dict()
        state["batch_size"] = self.batch_size
        state["drop_last"] = self.drop_last
        state["total_items"] = self.num_items
        return state

    def load_state_dict(self, state: dict) -> None:
        for field_name in ("batch_size", "drop_last", "total_items"):
            expected = getattr(self, field_name if field_name != "total_items" else "num_items")
            if state.get(field_name) != expected:
                raise DatasetError(
                    f"sampler state mismatch on {field_name!r}: saved "
                    f"{state.get(field_name)!r}, this sampler has {expected!r}"
                )
        inner = {k: state[k] for k in ("num_items", "shuffle", "seed", "epoch", "cursor")}
        self._order.load_state_dict(inner)


# ----------------------------------------------------------------------
# Background prefetch
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _PrefetchInit:
    """Spawn payload for prefetch workers (picklable by construction).

    ``source`` is either a :class:`StreamDataset` (pickled as its directory
    path; the worker opens its own memmaps) or a tuple of eager samples.
    """

    source: Any
    scaler: Any
    include_load: bool
    path_feature_dim: int
    readout_targets: int


def _init_prefetch_worker(payload: _PrefetchInit) -> _PrefetchInit:
    """Worker initializer: the (re-hydrated) init payload is the state."""
    return payload


def _prefetch_pack_worker(
    state: _PrefetchInit, broadcast: Any, payload: Sequence[int]
) -> tuple[Any, np.ndarray, ForwardPlan]:
    """Materialize + pack one batch of sample indices.

    Returns the fused ``ModelInput``, the concatenated encoded targets, and
    the batch's :class:`~repro.core.plan.ForwardPlan` (gather/scatter
    schedules) so the consuming train step skips plan building too.  Pure
    function of ``(state, payload)`` — no globals, clocks, or unseeded RNG —
    which is what the RP2xx spawn-safety pass proves.
    """
    prepared = [
        prepare_training_input(
            state.source[i],
            scaler=state.scaler,
            include_load=state.include_load,
            path_feature_dim=state.path_feature_dim,
            readout_targets=state.readout_targets,
        )
        for i in payload
    ]
    inputs, targets = fuse_training_batch(prepared)
    return inputs, targets, build_plan(inputs)


class PrefetchLoader:
    """Packs upcoming batches in a background process pool.

    While the trainer runs step *k*, the pool packs the next window of
    batches (materialize from the streaming source, build features, fuse,
    plan) and a feeder thread hands them over through a bounded queue of
    ``depth`` batches — bounding parent RAM to ``depth`` packed batches no
    matter how large the dataset is.  Worker crashes are handled by the
    underlying :class:`~repro.runner.persistent.PersistentPool` (respawn +
    resubmit), so a killed prefetch process costs latency, never data.

    Args:
        source: :class:`StreamDataset` or eager sequence of samples.
        scaler: Fitted feature scaler (must match the consuming trainer).
        include_load / path_feature_dim / readout_targets: The trainer's
            input-building configuration.
        workers: Prefetch processes (1 is the classic double-buffer).
        depth: Bounded handover queue length, in packed batches.
    """

    def __init__(
        self,
        source: Any,
        *,
        scaler: Any,
        include_load: bool,
        path_feature_dim: int,
        readout_targets: int,
        workers: int = 1,
        depth: int = 4,
        mp_context: str = "auto",
        max_restarts: int = 2,
        step_timeout: float | None = None,
    ) -> None:
        if depth < 1:
            raise DatasetError(f"depth must be >= 1, got {depth}")
        if not isinstance(source, StreamDataset):
            source = tuple(source)
        self.depth = depth
        self._pool = PersistentPool(
            _prefetch_pack_worker,
            workers=workers,
            initializer=_init_prefetch_worker,
            init_payload=_PrefetchInit(
                source=source,
                scaler=scaler,
                include_load=include_load,
                path_feature_dim=path_feature_dim,
                readout_targets=readout_targets,
            ),
            mp_context=mp_context,
            max_restarts=max_restarts,
            step_timeout=step_timeout,
        )

    # ------------------------------------------------------------------
    @property
    def pool(self) -> PersistentPool:
        """The underlying pool (stats, crash testing)."""
        return self._pool

    def batches(
        self, batch_indices: Sequence[Sequence[int]]
    ) -> Iterator[tuple[Any, np.ndarray]]:
        """Yield pre-packed ``(inputs, targets)`` for each index batch, in order.

        A feeder thread drives the pool one worker-window ahead and parks
        results in a bounded queue; this generator pops them.  Worker
        exceptions re-raise here, on the consuming thread.  Closing the
        generator early (e.g. a training error) stops the feeder and drains
        the queue — no thread or process is left blocked.
        """
        schedule = [tuple(int(i) for i in batch) for batch in batch_indices]
        handover: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item: tuple) -> bool:
            while not stop.is_set():
                try:
                    handover.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _feed() -> None:
            try:
                window = self._pool.workers
                for start in range(0, len(schedule), window):
                    if stop.is_set():
                        return
                    for packed in self._pool.run_step(schedule[start : start + window]):
                        if not _put(("batch", packed)):
                            return
            # Not swallowed: the consumer thread re-raises whatever lands on
            # the queue with kind "error".
            except BaseException as exc:  # repro-lint: disable=RP004
                _put(("error", exc))

        feeder = threading.Thread(target=_feed, name="prefetch-feeder", daemon=True)
        feeder.start()
        try:
            for _ in range(len(schedule)):
                kind, value = handover.get()
                if kind == "error":
                    raise value
                inputs, targets, plan = value
                adopt_plan(inputs, plan)
                yield inputs, targets
        finally:
            stop.set()
            while feeder.is_alive():
                try:
                    handover.get_nowait()
                except queue.Empty:
                    time.sleep(0.005)
            feeder.join()

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "PrefetchLoader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
