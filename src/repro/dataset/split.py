"""Train/evaluation splitting and dataset-level statistics."""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..random import make_rng
from ..core.features import FeatureScaler
from .sample import Sample

__all__ = ["train_eval_split", "fit_scaler"]


def train_eval_split(
    samples: list[Sample],
    eval_fraction: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> tuple[list[Sample], list[Sample]]:
    """Random disjoint split into (train, eval) lists.

    Raises:
        DatasetError: If either side would be empty.
    """
    if not 0.0 < eval_fraction < 1.0:
        raise DatasetError(f"eval_fraction must be in (0, 1), got {eval_fraction}")
    if len(samples) < 2:
        raise DatasetError(f"need at least 2 samples to split, got {len(samples)}")
    rng = make_rng(seed)
    order = rng.permutation(len(samples))
    n_eval = max(1, int(round(eval_fraction * len(samples))))
    if n_eval >= len(samples):
        n_eval = len(samples) - 1
    eval_idx = set(order[:n_eval].tolist())
    train = [s for i, s in enumerate(samples) if i not in eval_idx]
    evaluation = [s for i, s in enumerate(samples) if i in eval_idx]
    return train, evaluation


def fit_scaler(samples: list[Sample]) -> FeatureScaler:
    """Fit feature/target scaling on a training set.

    Collects every link capacity, per-path traffic rate and log-target seen
    across the samples.
    """
    if not samples:
        raise DatasetError("cannot fit a scaler on an empty dataset")
    capacities = np.concatenate([s.topology.capacities() for s in samples])
    rates = np.concatenate(
        [np.array([s.traffic.rate(a, b) for a, b in s.pairs]) for s in samples]
    )
    targets = np.concatenate([s.targets() for s in samples], axis=0)
    logs = np.log(np.maximum(targets, FeatureScaler.EPS))
    return FeatureScaler.fit(capacities, rates, logs)
