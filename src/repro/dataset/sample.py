"""Dataset sample: one simulated network scenario with ground-truth KPIs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError
from ..routing import RoutingScheme
from ..topology import Topology
from ..traffic import TrafficMatrix

__all__ = ["Sample"]


@dataclass(frozen=True)
class Sample:
    """One (topology, routing, traffic) scenario plus simulator ground truth.

    Attributes:
        topology: The network graph.
        routing: Per-pair paths used by the simulator.
        traffic: Offered traffic matrix.
        pairs: The measured (src, dst) pairs, sorted; labels align to this.
        delay: Ground-truth mean per-packet delay per pair (seconds).
        jitter: Ground-truth delay variance per pair (seconds^2).
        loss_rate: Ground-truth packet-loss fraction per pair, in [0, 1]
            (zeros for archives written before this label existed).
        pair_class: Optional QoS class per pair (0 = highest priority) when
            the scenario was simulated with multiple priority bands; ``None``
            for single-class scenarios.
        meta: Provenance (seeds, sim duration, intensity, ...).
    """

    topology: Topology
    routing: RoutingScheme
    traffic: TrafficMatrix
    pairs: tuple[tuple[int, int], ...]
    delay: np.ndarray
    jitter: np.ndarray
    loss_rate: np.ndarray | None = None
    pair_class: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.pairs)
        if self.loss_rate is None:
            object.__setattr__(self, "loss_rate", np.zeros(n))
        if (
            self.delay.shape != (n,)
            or self.jitter.shape != (n,)
            or self.loss_rate.shape != (n,)
        ):
            raise DatasetError(
                f"labels must be ({n},); got delay {self.delay.shape}, "
                f"jitter {self.jitter.shape}, loss {self.loss_rate.shape}"
            )
        if not np.isfinite(self.delay).all() or (self.delay <= 0).any():
            raise DatasetError("delays must be finite and positive")
        if not np.isfinite(self.jitter).all() or (self.jitter < 0).any():
            raise DatasetError("jitter must be finite and non-negative")
        if ((self.loss_rate < 0) | (self.loss_rate > 1)).any():
            raise DatasetError("loss rates must lie in [0, 1]")
        if self.pair_class is not None:
            if self.pair_class.shape != (n,):
                raise DatasetError(
                    f"pair_class must be ({n},), got {self.pair_class.shape}"
                )
            if (self.pair_class < 0).any():
                raise DatasetError("pair classes must be non-negative")
        for pair in self.pairs:
            if pair not in self.routing:
                raise DatasetError(f"measured pair {pair} is not routed")

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def topology_name(self) -> str:
        return self.topology.name

    def targets(self) -> np.ndarray:
        """(P, 2) array of raw [delay, jitter] labels."""
        return np.stack([self.delay, self.jitter], axis=1)
