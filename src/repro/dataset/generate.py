"""End-to-end dataset generation: scenario sampling + packet-level simulation.

Reproduces the structure of the paper's datasets: for a given topology,
every sample draws a fresh routing scheme ("wide variety of routing
schemes") and a fresh traffic matrix ("different traffic intensity"), then
runs the packet-level simulator to obtain per-pair mean delay and jitter
labels.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import DatasetError
from ..units import BitsPerPacket, Dimensionless, Packets, Seconds
from ..random import make_rng, split_rng
from ..routing import RoutingScheme
from ..runner import (
    CheckpointStore,
    ParallelRunner,
    ProgressEvent,
    RunMetrics,
    RunnerConfig,
    Task,
    TaskFailure,
)
from ..simulator import SimulationConfig, simulate
from ..topology import Topology
from ..traffic import (
    TrafficMatrix,
    random_traffic,
    scale_to_utilization,
    DEFAULT_MEAN_PACKET_BITS,
)
from .io import sample_from_dict, sample_to_dict
from .sample import Sample

__all__ = [
    "GenerationConfig",
    "GenerationRun",
    "InjectedFailure",
    "generate_sample",
    "generate_dataset",
    "generate_dataset_run",
]

_ROUTING_KINDS = ("shortest", "random_weighted", "random_ksp")


@dataclass(frozen=True)
class GenerationConfig:
    """Scenario-sampling knobs.

    Attributes:
        intensity_range: Bottleneck-utilization interval traffic is scaled to.
        routing_kinds: Pool of routing-scheme factories sampled per scenario.
        target_packets_per_pair: Simulated packets the *average* pair should
            contribute; drives the simulation duration.
        min_delivered: Pairs with fewer recorded deliveries are dropped from
            the labels (their delay estimate would be noise).
        active_fraction: Fraction of pairs with nonzero demand (sparse
            matrices keep large topologies affordable).
        mean_packet_bits: Mean packet size (bits).
        buffer_packets: Per-link FIFO buffer.
        warmup_fraction: Share of the simulation horizon treated as warm-up.
        max_duration: Hard cap on the simulated horizon (seconds).
        arrivals: Arrival process of every flow — ``"poisson"`` (the public
            datasets' model, where M/M/1 analysis is nearly exact) or
            ``"onoff"`` (bursty "real traffic distributions" where analytic
            models break down, per the paper's introduction).
        num_classes: QoS classes (1 = plain FIFO best effort).  With more
            than one class, every pair is assigned a uniform-random class
            and links schedule with strict priority (class 0 first).
    """

    intensity_range: tuple[float, float] = (0.3, 0.9)
    routing_kinds: tuple[str, ...] = _ROUTING_KINDS
    target_packets_per_pair: Packets = 150.0
    min_delivered: int = 20
    active_fraction: float = 1.0
    mean_packet_bits: BitsPerPacket = DEFAULT_MEAN_PACKET_BITS
    buffer_packets: int = 64
    warmup_fraction: Dimensionless = 0.1
    max_duration: Seconds = 1e5
    arrivals: str = "poisson"
    num_classes: int = 1

    def __post_init__(self) -> None:
        lo, hi = self.intensity_range
        if not 0 < lo <= hi:
            raise DatasetError(f"bad intensity range {self.intensity_range}")
        if not 0 < self.active_fraction <= 1:
            raise DatasetError(f"active_fraction must be in (0, 1], got {self.active_fraction}")
        for kind in self.routing_kinds:
            if kind not in _ROUTING_KINDS:
                raise DatasetError(
                    f"unknown routing kind {kind!r}; options: {_ROUTING_KINDS}"
                )
        if self.arrivals not in ("poisson", "onoff", "deterministic"):
            raise DatasetError(f"unknown arrival process {self.arrivals!r}")
        if self.num_classes < 1:
            raise DatasetError(f"num_classes must be >= 1, got {self.num_classes}")


def _draw_routing(
    topology: Topology, kind: str, rng: np.random.Generator
) -> RoutingScheme:
    if kind == "shortest":
        return RoutingScheme.shortest_path(topology)
    if kind == "random_weighted":
        return RoutingScheme.random_weighted(topology, seed=rng)
    return RoutingScheme.random_ksp(topology, k=3, seed=rng)


def _sparsify(
    tm: TrafficMatrix, fraction: float, rng: np.random.Generator
) -> TrafficMatrix:
    """Zero out a random subset of pairs, keeping ``fraction`` of them."""
    if fraction >= 1.0:
        return tm
    rates = tm.rates.copy()
    pairs = tm.nonzero_pairs()
    keep = max(2, int(round(fraction * len(pairs))))
    chosen = rng.choice(len(pairs), size=len(pairs) - keep, replace=False)
    for idx in chosen:
        s, d = pairs[idx]
        rates[s, d] = 0.0
    return TrafficMatrix(rates)


def generate_sample(
    topology: Topology,
    seed: int | np.random.Generator | None = None,
    config: GenerationConfig | None = None,
) -> Sample:
    """Draw one scenario on ``topology``, simulate it, and package labels.

    The simulation horizon adapts to the drawn traffic so the mean pair
    receives about ``config.target_packets_per_pair`` packets.

    Raises:
        DatasetError: If fewer than two pairs survive the
            ``min_delivered`` filter (statistically empty sample).
    """
    cfg = config or GenerationConfig()
    rng = make_rng(seed)
    routing_rng, traffic_rng, sim_rng = split_rng(rng, 3)

    kind = cfg.routing_kinds[int(rng.integers(0, len(cfg.routing_kinds)))]
    routing = _draw_routing(topology, kind, routing_rng)

    intensity = float(rng.uniform(*cfg.intensity_range))
    tm = random_traffic(
        topology, routing, seed=traffic_rng, intensity_range=(intensity, intensity)
    )
    if cfg.active_fraction < 1.0:
        tm = _sparsify(tm, cfg.active_fraction, traffic_rng)
        tm = scale_to_utilization(tm, topology, routing, intensity)

    rates = np.array([tm.rate(s, d) for s, d in tm.nonzero_pairs()])
    mean_rate_pps = float(rates.mean()) / cfg.mean_packet_bits
    duration = min(
        cfg.max_duration,
        cfg.target_packets_per_pair / mean_rate_pps / (1.0 - cfg.warmup_fraction),
    )
    flow_priorities: dict[tuple[int, int], int] = {}
    if cfg.num_classes > 1:
        flow_priorities = {
            pair: int(rng.integers(0, cfg.num_classes))
            for pair in tm.nonzero_pairs()
        }
    sim_config = SimulationConfig(
        duration=duration,
        warmup=cfg.warmup_fraction * duration,
        buffer_packets=cfg.buffer_packets,
        mean_packet_bits=cfg.mean_packet_bits,
        arrivals=cfg.arrivals,
        priority_bands=cfg.num_classes,
        seed=int(sim_rng.integers(0, 2**31 - 1)),
    )
    result = simulate(
        topology, routing, tm, sim_config, flow_priorities=flow_priorities
    )

    pairs = []
    delays = []
    jitters = []
    losses = []
    for pair in sorted(result.flows):
        stats = result.flows[pair]
        if stats.delivered >= cfg.min_delivered and np.isfinite(stats.mean_delay):
            pairs.append(pair)
            delays.append(stats.mean_delay)
            jitters.append(stats.jitter)
            losses.append(stats.loss_rate)
    if len(pairs) < 2:
        raise DatasetError(
            f"sample on {topology.name} kept {len(pairs)} pairs; raise duration "
            f"or lower min_delivered"
        )

    return Sample(
        topology=topology,
        routing=routing,
        traffic=tm,
        pairs=tuple(pairs),
        delay=np.array(delays),
        jitter=np.array(jitters),
        loss_rate=np.array(losses),
        pair_class=(
            np.array([flow_priorities[p] for p in pairs])
            if flow_priorities
            else None
        ),
        meta={
            "routing_kind": kind,
            "arrivals": cfg.arrivals,
            "num_classes": cfg.num_classes,
            "intensity": intensity,
            "duration": duration,
            "generated_packets": result.generated,
            "loss_rate": result.overall_loss_rate,
            "events": result.events_processed,
        },
    )


class InjectedFailure(RuntimeError):
    """Raised by the generation worker for fault-injection tests/CI."""


@dataclass(frozen=True)
class _GenerationTask:
    """Picklable payload of one scenario-generation task."""

    topology: Topology
    config: GenerationConfig | None
    fail_attempts: int = 0  # fault injection: raise on attempts < this


def _generation_worker(payload: _GenerationTask, seed: int, attempt: int) -> Sample:
    """Top-level runner worker (picklable under every start method)."""
    if attempt < payload.fail_attempts:
        raise InjectedFailure(
            f"injected failure on attempt {attempt} "
            f"(fails first {payload.fail_attempts} attempt(s))"
        )
    return generate_sample(payload.topology, seed=seed, config=payload.config)


@dataclass
class GenerationRun:
    """Outcome of :func:`generate_dataset_run`.

    Attributes:
        samples: Successfully generated samples in task order (tasks that
            exhausted retries under ``on_exhausted="skip"`` are absent).
        metrics: Runner accounting plus generation extras
            (``events_simulated``, ``from_checkpoint``).
        failures: Structured records of every failed attempt.
        missing: Indexes of tasks that never produced a sample.
    """

    samples: list[Sample]
    metrics: "RunMetrics"
    failures: list["TaskFailure"]
    missing: tuple[int, ...] = ()


def _topology_fingerprint(topology: Topology) -> dict:
    digest = hashlib.sha256()
    for link in topology.links:
        digest.update(
            f"{link.src},{link.dst},{link.capacity},{link.propagation_delay};".encode()
        )
    return {
        "name": topology.name,
        "num_nodes": topology.num_nodes,
        "links_sha256": digest.hexdigest(),
    }


def generate_dataset_run(
    topology: Topology,
    num_samples: int,
    seed: int | np.random.Generator | None = None,
    config: GenerationConfig | None = None,
    workers: int = 1,
    *,
    runner: "RunnerConfig | None" = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    on_event: "Callable[[ProgressEvent], None] | None" = None,
    inject_failures: dict[int, int] | None = None,
    dataset_dir: str | Path | None = None,
) -> GenerationRun:
    """Generate scenarios through the resilient runner, with full accounting.

    Scenario ``i`` always runs with the ``i``-th pre-split seed, and retries
    derive fresh seeds deterministically from ``(seed_i, attempt)``, so the
    output is bitwise identical for any ``workers`` count — including runs
    interrupted and resumed from ``checkpoint_dir``.

    Args:
        workers: Parallel simulation processes (overrides ``runner.workers``).
        runner: Pool policy (start method, per-task timeout, retry budget,
            exhaustion behavior); library defaults when omitted.
        checkpoint_dir: When set, every completed scenario is persisted as a
            shard under this directory the moment it finishes.
        resume: Reuse completed shards found in ``checkpoint_dir`` (after a
            fingerprint check) instead of regenerating them.
        on_event: Progress callback receiving
            :class:`~repro.runner.ProgressEvent` notifications.
        inject_failures: Fault injection for tests/CI — maps a task index to
            the number of its leading attempts that raise
            :class:`InjectedFailure` before the scenario is simulated.
        dataset_dir: When set, the completed run is additionally written as
            a binary stream dataset (:mod:`repro.dataset.stream`) under this
            directory — generation output doubles as the training format,
            trainable via ``fit(StreamDataset(dataset_dir))`` or
            ``repro train --dataset-dir`` without a conversion pass.

    Raises:
        DatasetError: On invalid arguments.
        RunnerError: When a scenario exhausts its retry budget (default
            ``on_exhausted="raise"`` policy) or the checkpoint mismatches.
    """
    if num_samples < 1:
        raise DatasetError(f"num_samples must be >= 1, got {num_samples}")
    if workers < 1:
        raise DatasetError(f"workers must be >= 1, got {workers}")
    runner_cfg = replace(runner or RunnerConfig(), workers=workers)
    rng = make_rng(seed)
    seeds = [int(s) for s in rng.integers(0, 2**63 - 1, size=num_samples)]
    injections = inject_failures or {}

    store = None
    completed: dict[int, Sample] = {}
    if checkpoint_dir is not None:
        fingerprint = {
            "kind": "generate_dataset",
            "topology": _topology_fingerprint(topology),
            "num_samples": num_samples,
            "config": None if config is None else asdict(config),
            "seeds_sha256": hashlib.sha256(
                ",".join(map(str, seeds)).encode()
            ).hexdigest(),
        }
        store = CheckpointStore(
            checkpoint_dir,
            fingerprint=fingerprint,
            encode=sample_to_dict,
            decode=sample_from_dict,
        )
        completed = store.open(num_tasks=num_samples, resume=resume)

    tasks = [
        Task(
            index=i,
            seed=seeds[i],
            payload=_GenerationTask(topology, config, injections.get(i, 0)),
        )
        for i in range(num_samples)
        if i not in completed
    ]

    def on_result(index: int, seed_used: int, attempt: int, value: Sample) -> None:
        if store is not None:
            store.record(index, seed_used, attempt, value)

    on_failure = store.record_failure if store is not None else None
    pool = ParallelRunner(_generation_worker, runner_cfg)
    if tasks:
        result = pool.run(
            tasks, on_event=on_event, on_result=on_result, on_failure=on_failure
        )
        fresh = {
            task.index: value
            for task, value in zip(tasks, result.values)
            if value is not None
        }
        metrics = result.metrics
        failures = result.failures
    else:
        fresh = {}
        metrics = RunMetrics(total_tasks=0, workers=workers)
        failures = []

    by_index = {**completed, **fresh}
    samples = [by_index[i] for i in range(num_samples) if i in by_index]
    missing = tuple(i for i in range(num_samples) if i not in by_index)
    metrics.extras["from_checkpoint"] = len(completed)
    metrics.extras["events_simulated"] = int(
        sum(s.meta.get("events", 0) for s in fresh.values())
    )
    if dataset_dir is not None and samples:
        # Imported here: ``stream`` reaches through serving modules that
        # import ``repro.dataset`` and must not load during package init.
        from .stream import write_stream_dataset

        write_stream_dataset(
            samples, dataset_dir,
            fingerprint={
                "kind": "generate_dataset",
                "topology": _topology_fingerprint(topology),
                "num_samples": num_samples,
                "config": None if config is None else asdict(config),
            },
            overwrite=True,
        )
    return GenerationRun(
        samples=samples, metrics=metrics, failures=failures, missing=missing
    )


def generate_dataset(
    topology: Topology,
    num_samples: int,
    seed: int | np.random.Generator | None = None,
    config: GenerationConfig | None = None,
    workers: int = 1,
    **runner_kwargs,
) -> list[Sample]:
    """Generate ``num_samples`` independent scenarios on one topology.

    Args:
        workers: Parallel simulation processes.  Results are bitwise
            identical to a sequential run (each scenario owns a pre-split
            seed, retries reseed deterministically); order is preserved.
        **runner_kwargs: Forwarded to :func:`generate_dataset_run`
            (``runner=``, ``checkpoint_dir=``, ``resume=``, ``on_event=``).

    See :func:`generate_dataset_run` for the variant returning metrics and
    structured failure records alongside the samples.
    """
    return generate_dataset_run(
        topology, num_samples, seed=seed, config=config, workers=workers,
        **runner_kwargs,
    ).samples
