"""Dataset-level summary statistics.

Used by the ``repro info`` CLI command and by notebooks/examples to sanity
check a generated archive before spending training time on it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .sample import Sample

__all__ = ["DatasetSummary", "summarize_dataset", "format_summary"]


@dataclass(frozen=True)
class DatasetSummary:
    """Aggregate view of a sample list."""

    num_samples: int
    total_pairs: int
    topologies: dict[str, int]
    routing_kinds: dict[str, int]
    arrival_kinds: dict[str, int]
    delay_quantiles: dict[str, float]  # keys: min/p25/p50/p75/max/mean
    jitter_mean: float
    loss_mean: float
    intensity_range: tuple[float, float] | None
    num_classes: int


def _quantiles(values: np.ndarray) -> dict[str, float]:
    return {
        "min": float(values.min()),
        "p25": float(np.quantile(values, 0.25)),
        "p50": float(np.quantile(values, 0.50)),
        "p75": float(np.quantile(values, 0.75)),
        "max": float(values.max()),
        "mean": float(values.mean()),
    }


def summarize_dataset(samples: list[Sample]) -> DatasetSummary:
    """Compute aggregate statistics over ``samples``.

    Raises:
        DatasetError: For an empty list.
    """
    if not samples:
        raise DatasetError("cannot summarize an empty dataset")
    delays = np.concatenate([s.delay for s in samples])
    jitters = np.concatenate([s.jitter for s in samples])
    losses = np.concatenate([s.loss_rate for s in samples])

    intensities = [
        s.meta["intensity"] for s in samples if "intensity" in s.meta
    ]
    classes = max(
        (int(s.pair_class.max()) + 1 for s in samples if s.pair_class is not None),
        default=1,
    )
    return DatasetSummary(
        num_samples=len(samples),
        total_pairs=int(sum(s.num_pairs for s in samples)),
        topologies=dict(Counter(s.topology_name for s in samples)),
        routing_kinds=dict(
            Counter(s.meta.get("routing_kind", s.routing.name) for s in samples)
        ),
        arrival_kinds=dict(
            Counter(s.meta.get("arrivals", "unknown") for s in samples)
        ),
        delay_quantiles=_quantiles(delays),
        jitter_mean=float(jitters.mean()),
        loss_mean=float(losses.mean()),
        intensity_range=(
            (float(min(intensities)), float(max(intensities)))
            if intensities
            else None
        ),
        num_classes=classes,
    )


def format_summary(summary: DatasetSummary) -> str:
    """Render a summary as a human-readable block."""
    q = summary.delay_quantiles
    lines = [
        f"samples: {summary.num_samples}   labeled paths: {summary.total_pairs}",
        "topologies: "
        + ", ".join(f"{name} x{n}" for name, n in sorted(summary.topologies.items())),
        "routing:    "
        + ", ".join(f"{k} x{n}" for k, n in sorted(summary.routing_kinds.items())),
        "arrivals:   "
        + ", ".join(f"{k} x{n}" for k, n in sorted(summary.arrival_kinds.items())),
        f"delay (s):  min {q['min']:.4f}  p50 {q['p50']:.4f}  mean {q['mean']:.4f}  "
        f"max {q['max']:.4f}",
        f"jitter mean (s^2): {summary.jitter_mean:.6f}   "
        f"loss mean: {summary.loss_mean:.4f}",
    ]
    if summary.intensity_range is not None:
        lo, hi = summary.intensity_range
        lines.append(f"intensity:  {lo:.2f} .. {hi:.2f} (bottleneck utilization)")
    if summary.num_classes > 1:
        lines.append(f"QoS classes: {summary.num_classes}")
    return "\n".join(lines)
