"""Dataset pipeline: scenario generation, serialization, splitting."""

from .sample import Sample
from .generate import (
    GenerationConfig,
    GenerationRun,
    InjectedFailure,
    generate_sample,
    generate_dataset,
    generate_dataset_run,
)
from .io import (
    sample_to_dict,
    sample_from_dict,
    save_dataset,
    load_dataset,
    iter_dataset,
)
from .split import train_eval_split, fit_scaler
from .statistics import DatasetSummary, summarize_dataset, format_summary

# Imported last: ``stream`` reaches back through serving/runner modules that
# themselves import ``repro.dataset`` for :class:`Sample` (bound above).
from .stream import (
    ItemSampler,
    MinibatchSampler,
    PrefetchLoader,
    ShardReader,
    ShardWriter,
    StreamDataset,
    convert_jsonl,
    write_stream_dataset,
)

__all__ = [
    "ItemSampler",
    "MinibatchSampler",
    "PrefetchLoader",
    "ShardReader",
    "ShardWriter",
    "StreamDataset",
    "convert_jsonl",
    "write_stream_dataset",
    "DatasetSummary",
    "summarize_dataset",
    "format_summary",
    "Sample",
    "GenerationConfig",
    "GenerationRun",
    "InjectedFailure",
    "generate_sample",
    "generate_dataset",
    "generate_dataset_run",
    "sample_to_dict",
    "sample_from_dict",
    "save_dataset",
    "load_dataset",
    "iter_dataset",
    "train_eval_split",
    "fit_scaler",
]
