"""Dataset serialization: JSON-lines archives of samples.

Each line is one self-contained sample (topology, routing, traffic, labels,
meta), so archives can be streamed, concatenated with ``cat``, and inspected
with ``jq``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import DatasetError, DatasetFormatError
from ..routing import RoutingScheme
from ..topology import Link, Topology
from ..traffic import TrafficMatrix
from .sample import Sample

__all__ = ["sample_to_dict", "sample_from_dict", "save_dataset", "load_dataset", "iter_dataset"]

_FORMAT_VERSION = 1


def sample_to_dict(sample: Sample) -> dict:
    """JSON-friendly representation of one sample."""
    topo = sample.topology
    return {
        "version": _FORMAT_VERSION,
        "topology": {
            "name": topo.name,
            "num_nodes": topo.num_nodes,
            "links": [
                [l.src, l.dst, l.capacity, l.propagation_delay] for l in topo.links
            ],
        },
        "routing": {"name": sample.routing.name, "paths": sample.routing.to_dict()},
        "traffic": sample.traffic.to_dict(),
        "pairs": [[s, d] for s, d in sample.pairs],
        "delay": sample.delay.tolist(),
        "jitter": sample.jitter.tolist(),
        "loss_rate": sample.loss_rate.tolist(),
        "pair_class": (
            None if sample.pair_class is None else sample.pair_class.tolist()
        ),
        "meta": sample.meta,
    }


def sample_from_dict(data: dict) -> Sample:
    """Inverse of :func:`sample_to_dict`."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported sample format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    tdata = data["topology"]
    links = [
        Link(i, int(src), int(dst), float(cap), float(prop))
        for i, (src, dst, cap, prop) in enumerate(tdata["links"])
    ]
    topology = Topology(int(tdata["num_nodes"]), links, name=tdata["name"])
    routing = RoutingScheme.from_dict(
        topology, data["routing"]["paths"], name=data["routing"]["name"]
    )
    traffic = TrafficMatrix.from_dict(topology.num_nodes, data["traffic"])
    return Sample(
        topology=topology,
        routing=routing,
        traffic=traffic,
        pairs=tuple((int(s), int(d)) for s, d in data["pairs"]),
        delay=np.asarray(data["delay"], dtype=float),
        jitter=np.asarray(data["jitter"], dtype=float),
        # Older archives predate the loss label; default to zeros.
        loss_rate=(
            np.asarray(data["loss_rate"], dtype=float)
            if "loss_rate" in data
            else None
        ),
        pair_class=(
            np.asarray(data["pair_class"], dtype=int)
            if data.get("pair_class") is not None
            else None
        ),
        meta=data.get("meta", {}),
    )


def save_dataset(samples: Iterable[Sample], path: str | Path) -> int:
    """Write samples to a ``.jsonl`` archive; returns the count written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for sample in samples:
            fh.write(json.dumps(sample_to_dict(sample)) + "\n")
            count += 1
    return count


def iter_dataset(path: str | Path) -> Iterator[Sample]:
    """Stream samples from a ``.jsonl`` archive.

    Every line is schema-validated before decoding: a missing, non-integer,
    or future ``version`` field raises :class:`DatasetFormatError` carrying
    the file and 1-based line number, as does any structurally corrupt record
    (bad JSON, missing keys, malformed arrays).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset archive {path} does not exist")
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetFormatError(
                    f"{path}:{line_no}: corrupt sample (invalid JSON): {exc}",
                    path=path,
                    line=line_no,
                ) from exc
            if not isinstance(data, dict):
                raise DatasetFormatError(
                    f"{path}:{line_no}: corrupt sample: expected a JSON object, "
                    f"got {type(data).__name__}",
                    path=path,
                    line=line_no,
                )
            version = data.get("version")
            if not isinstance(version, int) or version != _FORMAT_VERSION:
                raise DatasetFormatError(
                    f"{path}:{line_no}: unsupported sample format version "
                    f"{version!r} (this build reads version {_FORMAT_VERSION})",
                    path=path,
                    line=line_no,
                )
            try:
                yield sample_from_dict(data)
            except DatasetFormatError as exc:
                raise DatasetFormatError(
                    f"{path}:{line_no}: {exc}", path=path, line=line_no
                ) from exc
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise DatasetFormatError(
                    f"{path}:{line_no}: corrupt sample: {exc!r}",
                    path=path,
                    line=line_no,
                ) from exc


def load_dataset(path: str | Path) -> list[Sample]:
    """Load a whole archive into memory."""
    return list(iter_dataset(path))
